//! Multi-device topology and sparsity-aware head placement.
//!
//! LServe's per-head sparsity makes head-parallel attention structurally
//! imbalanced: a streaming head costs a constant sink+local window while a
//! dense head costs its full (or selected) history, so spreading KV heads
//! round-robin across devices leaves some devices idle behind the one that
//! drew the dense heads — the observation S-HPLB makes for head-parallel
//! sparse decoding. This module is the *modeled* device fabric the executor
//! places those heads on:
//!
//! * [`Topology`] — a symmetric mesh of simulated devices with a modeled
//!   interconnect cost per cross-device gather (a sequence's attention output
//!   produced on a non-home device must cross the mesh before the serial
//!   output projection), plus a host link for tier migrations, priced in the
//!   same work-token currency as the rest of the cost model.
//! * [`Placement`] — an explicit KV-head → device assignment. The
//!   sparsity-aware policy runs the executor's per-shard cost signal through
//!   a device-level LPT (the same `4/3`-approximate makespan heuristic
//!   `lserve_attention::lpt_assign` uses for worker queues); the round-robin
//!   policy is the sparsity-blind baseline it is benchmarked against.
//!
//! Placement never changes outputs — devices are simulated, every shard still
//! writes its own disjoint slice — it changes only the modeled per-device
//! load, the interconnect tokens charged for non-local gathers, and the trace
//! layout. That is what makes the device-matrix determinism tests possible:
//! any device count and any policy must be bit-identical to the solo run.

use lserve_attention::lpt_assign;

/// Default modeled interconnect charge, in work tokens, for gathering one
/// non-home shard's attention output across the device mesh.
pub const DEFAULT_GATHER_COST_TOKENS: u64 = 4;

/// Token-units the inter-device link moves per modeled work token when the
/// rebalancer migrates a head's KV between devices. The mesh link is modeled
/// as 8x faster than the host link (NVLink-class vs PCIe-class), so head
/// migration is cheap relative to tier offload but never free.
pub const INTERCONNECT_SPEEDUP: u64 = 8;

/// Reads the simulated device count from `LSERVE_DEVICES` (1 when unset or
/// unparsable). Read per call — never cached process-wide — so tests and
/// benches can vary it between constructions in one process.
pub fn devices_from_env() -> usize {
    std::env::var("LSERVE_DEVICES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// A symmetric mesh of simulated devices plus a host link.
///
/// All costs are modeled work tokens on the engine's deterministic work
/// clock; the topology never executes anything and never changes outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    devices: usize,
    gather_cost_tokens: u64,
    interconnect_speedup: u64,
}

impl Topology {
    /// A single device: no mesh, every gather is local and free.
    pub fn single() -> Self {
        Self {
            devices: 1,
            gather_cost_tokens: 0,
            interconnect_speedup: INTERCONNECT_SPEEDUP,
        }
    }

    /// A symmetric all-to-all mesh of `devices` devices where every
    /// cross-device gather costs `gather_cost_tokens` modeled tokens.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn symmetric(devices: usize, gather_cost_tokens: u64) -> Self {
        assert!(devices > 0, "topology needs at least one device");
        Self {
            devices,
            gather_cost_tokens,
            interconnect_speedup: INTERCONNECT_SPEEDUP,
        }
    }

    /// Topology seeded from `LSERVE_DEVICES` with the default gather cost.
    pub fn from_env() -> Self {
        Self::symmetric(devices_from_env(), DEFAULT_GATHER_COST_TOKENS)
    }

    /// Number of simulated devices.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Modeled tokens one cross-device gather charges (0 on a single device).
    pub fn gather_cost_tokens(&self) -> u64 {
        if self.devices <= 1 {
            0
        } else {
            self.gather_cost_tokens
        }
    }

    /// Modeled tokens to migrate `token_units` of KV across the mesh when the
    /// rebalancer moves a head (0 on a single device, ceiling division
    /// otherwise — a migration is never free).
    pub fn migration_cost_tokens(&self, token_units: u64) -> u64 {
        if self.devices <= 1 || token_units == 0 {
            0
        } else {
            token_units.div_ceil(self.interconnect_speedup)
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::single()
    }
}

/// How KV heads are assigned to devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Device-level LPT over the per-head sparsity cost signal: heads sorted
    /// by descending cost each go to the least-loaded device. Zero-cost heads
    /// are weighted as 1 so ties still spread instead of piling on device 0.
    SparsityAware,
    /// Head `h` goes to device `h % devices` — the sparsity-blind baseline.
    RoundRobin,
}

/// An explicit KV-head → device assignment for one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    assign: Vec<usize>,
    devices: usize,
}

impl Placement {
    /// Computes a placement of `costs.len()` heads onto `devices` devices.
    ///
    /// Deterministic: equal inputs produce equal placements, and every head
    /// is assigned to exactly one device (devices may be empty when there are
    /// more devices than heads).
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn compute(costs: &[u64], devices: usize, policy: PlacementPolicy) -> Self {
        assert!(devices > 0, "placement needs at least one device");
        let assign = match policy {
            PlacementPolicy::RoundRobin => (0..costs.len()).map(|h| h % devices).collect(),
            PlacementPolicy::SparsityAware => {
                let weighted: Vec<u64> = costs.iter().map(|&c| c.max(1)).collect();
                let queues = lpt_assign(&weighted, devices);
                let mut assign = vec![0usize; costs.len()];
                for (d, queue) in queues.iter().enumerate() {
                    for &h in queue {
                        assign[h] = d;
                    }
                }
                assign
            }
        };
        Self { assign, devices }
    }

    /// The device holding head `h`.
    pub fn device_of(&self, head: usize) -> usize {
        self.assign[head]
    }

    /// The full head → device map.
    pub fn assignment(&self) -> &[usize] {
        &self.assign
    }

    /// Number of heads placed.
    pub fn heads(&self) -> usize {
        self.assign.len()
    }

    /// Number of devices placed onto.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Per-device load under `costs` (same length as the placement).
    pub fn device_loads(&self, costs: &[u64]) -> Vec<u64> {
        let mut loads = vec![0u64; self.devices];
        for (h, &d) in self.assign.iter().enumerate() {
            loads[d] += costs[h];
        }
        loads
    }

    /// Max-over-mean device load under `costs` — 1.0 is perfect balance,
    /// `devices` is everything on one device. Returns 1.0 when total load is
    /// zero.
    pub fn imbalance(&self, costs: &[u64]) -> f64 {
        let loads = self.device_loads(costs);
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *loads.iter().max().expect("devices > 0");
        max as f64 * self.devices as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_topology_charges_nothing() {
        let t = Topology::single();
        assert_eq!(t.devices(), 1);
        assert_eq!(t.gather_cost_tokens(), 0);
        assert_eq!(t.migration_cost_tokens(1000), 0);
    }

    #[test]
    fn mesh_charges_gathers_and_migrations() {
        let t = Topology::symmetric(4, 4);
        assert_eq!(t.gather_cost_tokens(), 4);
        assert_eq!(t.migration_cost_tokens(0), 0);
        assert_eq!(t.migration_cost_tokens(1), 1, "migration is never free");
        assert_eq!(t.migration_cost_tokens(64), 64 / INTERCONNECT_SPEEDUP);
    }

    #[test]
    fn sparsity_aware_beats_round_robin_on_skewed_heads() {
        // Head costs alternating heavy/light the way streaming/dense gating
        // produces them: round-robin puts all heavy heads on device 0.
        let costs = [100, 1, 100, 1, 100, 1, 100, 1];
        let sparse = Placement::compute(&costs, 2, PlacementPolicy::SparsityAware);
        let naive = Placement::compute(&costs, 2, PlacementPolicy::RoundRobin);
        assert!(sparse.imbalance(&costs) < naive.imbalance(&costs));
        assert!(sparse.imbalance(&costs) < 1.1);
        assert!(naive.imbalance(&costs) > 1.9);
    }

    #[test]
    fn placement_single_device_puts_everything_on_device_zero() {
        for policy in [PlacementPolicy::SparsityAware, PlacementPolicy::RoundRobin] {
            let p = Placement::compute(&[5, 0, 9], 1, policy);
            assert_eq!(p.assignment(), &[0, 0, 0]);
            assert_eq!(p.imbalance(&[5, 0, 9]), 1.0);
        }
    }

    #[test]
    fn placement_more_devices_than_heads_covers_every_head_once() {
        let costs = [7u64, 3];
        for policy in [PlacementPolicy::SparsityAware, PlacementPolicy::RoundRobin] {
            let p = Placement::compute(&costs, 8, policy);
            assert_eq!(p.heads(), 2);
            assert!(p.assignment().iter().all(|&d| d < 8));
            // Both heads land on distinct devices; the other six stay empty.
            assert_ne!(p.device_of(0), p.device_of(1));
            let loads = p.device_loads(&costs);
            assert_eq!(loads.iter().sum::<u64>(), 10);
            assert_eq!(loads.iter().filter(|&&l| l > 0).count(), 2);
        }
    }

    #[test]
    fn placement_all_zero_costs_still_spreads() {
        // Zero-cost heads are weighted as 1, so LPT spreads them instead of
        // piling every head on the first least-loaded scan hit (device 0).
        let costs = [0u64; 8];
        let p = Placement::compute(&costs, 4, PlacementPolicy::SparsityAware);
        let mut per_device = vec![0usize; 4];
        for &d in p.assignment() {
            per_device[d] += 1;
        }
        assert_eq!(per_device, vec![2, 2, 2, 2]);
    }

    #[test]
    fn placement_is_deterministic() {
        let costs: Vec<u64> = (0..32).map(|i| (i * 37) % 11).collect();
        for policy in [PlacementPolicy::SparsityAware, PlacementPolicy::RoundRobin] {
            let a = Placement::compute(&costs, 4, policy);
            let b = Placement::compute(&costs, 4, policy);
            assert_eq!(a, b);
        }
    }
}
