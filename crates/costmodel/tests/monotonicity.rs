//! Cost-model sanity sweeps: monotonicity, ordering stability, and breakdown
//! accounting across the whole (system x model x GPU x length) grid.

use lserve_costmodel::{decode_step, decode_throughput, max_batch, prefill, GpuSpec, SystemModel};
use lserve_model::ModelConfig;

fn systems() -> Vec<SystemModel> {
    vec![
        SystemModel::vllm(),
        SystemModel::qserve(),
        SystemModel::duo_attention(),
        SystemModel::minference(),
        SystemModel::quest(),
        SystemModel::lserve(),
        SystemModel::lserve_static_only(),
        SystemModel::lserve_dynamic_only(),
        SystemModel::lserve_dense_baseline(),
    ]
}

fn models() -> Vec<ModelConfig> {
    vec![
        ModelConfig::llama3_8b(),
        ModelConfig::llama2_7b(),
        ModelConfig::minitron_4b(),
    ]
}

const LENGTHS: [usize; 5] = [8_192, 32_768, 65_536, 131_072, 262_144];

#[test]
fn decode_latency_monotone_in_context() {
    for gpu in [GpuSpec::a100_80g(), GpuSpec::l40s()] {
        for model in models() {
            for sys in systems() {
                let mut prev = 0.0;
                for &seq in &LENGTHS {
                    let t = decode_step(&gpu, &model, &sys, seq, 1).total();
                    assert!(
                        t >= prev,
                        "{} on {} ({}): {t} < {prev} at {seq}",
                        sys.name,
                        model.name,
                        gpu.name
                    );
                    prev = t;
                }
            }
        }
    }
}

#[test]
fn prefill_latency_superlinear_for_dense_systems() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama3_8b();
    for sys in [SystemModel::vllm(), SystemModel::qserve()] {
        let t64 = prefill(&gpu, &model, &sys, 65_536).total();
        let t256 = prefill(&gpu, &model, &sys, 262_144).total();
        // Quadratic attention: 4x tokens must cost more than 4x time.
        assert!(t256 > 4.0 * t64, "{}: {t256} vs {t64}", sys.name);
    }
}

#[test]
fn batch_scales_attention_not_gemm() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama3_8b();
    let sys = SystemModel::vllm();
    let b1 = decode_step(&gpu, &model, &sys, 65_536, 1);
    let b4 = decode_step(&gpu, &model, &sys, 65_536, 4);
    assert_eq!(b1.gemm_s, b4.gemm_s, "decode GEMM is weight-bound");
    assert!((b4.attention_dense_s / b1.attention_dense_s - 4.0).abs() < 1e-9);
}

#[test]
fn lserve_wins_decode_latency_past_128k() {
    // Batch-1 latency: lighter stacks (DuoAttention) can tie or edge out LServe's
    // serving intercept at short contexts and on the small Minitron model — the
    // paper's own Figure 10 shows the gap closing in those regimes; its Minitron
    // win is a throughput result (covered by the next test). On the 7B/8B models
    // past 128K LServe must win outright.
    let gpu = GpuSpec::a100_80g();
    for model in [ModelConfig::llama3_8b(), ModelConfig::llama2_7b()] {
        for sys in [
            SystemModel::vllm(),
            SystemModel::qserve(),
            SystemModel::duo_attention(),
            SystemModel::minference(),
            SystemModel::quest(),
        ] {
            for &seq in &[131_072usize, 262_144] {
                let ours = decode_step(&gpu, &model, &SystemModel::lserve(), seq, 1).total();
                let theirs = decode_step(&gpu, &model, &sys, seq, 1).total();
                assert!(
                    ours <= theirs * 1.001,
                    "LServe lost to {} on {} at {seq}: {ours} vs {theirs}",
                    sys.name,
                    model.name
                );
            }
        }
    }
}

#[test]
fn lserve_wins_decode_throughput_from_64k() {
    // Throughput (batching included): LServe's smaller KV footprint admits more
    // sequences, so it wins from 64K on every model, as in Figure 10.
    let gpu = GpuSpec::a100_80g();
    for model in models() {
        for sys in [
            SystemModel::vllm(),
            SystemModel::qserve(),
            SystemModel::duo_attention(),
            SystemModel::minference(),
            SystemModel::quest(),
        ] {
            for &seq in &[65_536usize, 131_072, 262_144] {
                let ours = decode_throughput(&gpu, &model, &SystemModel::lserve(), seq)
                    .expect("LServe never OOMs here");
                if let Some(theirs) = decode_throughput(&gpu, &model, &sys, seq) {
                    assert!(
                        ours >= theirs * 0.999,
                        "LServe throughput lost to {} on {} at {seq}",
                        sys.name,
                        model.name
                    );
                }
            }
        }
    }
}

#[test]
fn breakdown_components_are_nonnegative_and_sum() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama2_7b();
    for sys in systems() {
        for &seq in &LENGTHS {
            let b = decode_step(&gpu, &model, &sys, seq, 2);
            for part in [
                b.gemm_s,
                b.attention_dense_s,
                b.attention_streaming_s,
                b.selector_s,
                b.overhead_s,
            ] {
                assert!(part >= 0.0 && part.is_finite());
            }
            let sum = b.gemm_s
                + b.attention_dense_s
                + b.attention_streaming_s
                + b.selector_s
                + b.overhead_s;
            assert!((sum - b.total()).abs() < 1e-12);
            let p = prefill(&gpu, &model, &sys, seq);
            assert!(p.gemm_s > 0.0 && p.attention_s > 0.0 && p.other_s > 0.0);
        }
    }
}

#[test]
fn max_batch_monotone_decreasing_in_context() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama3_8b();
    for sys in systems() {
        let mut prev = usize::MAX;
        for &seq in &LENGTHS {
            let b = max_batch(&gpu, &model, &sys, seq);
            assert!(b <= prev, "{} batch grew with context", sys.name);
            prev = b;
        }
    }
}

#[test]
fn throughput_none_iff_batch_zero() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama2_7b();
    for sys in systems() {
        for &seq in &[65_536usize, 524_288] {
            let b = max_batch(&gpu, &model, &sys, seq);
            let t = decode_throughput(&gpu, &model, &sys, seq);
            assert_eq!(b == 0, t.is_none(), "{} at {seq}", sys.name);
        }
    }
}

#[test]
fn quantized_streaming_systems_admit_more_sequences() {
    let gpu = GpuSpec::a100_80g();
    for model in models() {
        let seq = 131_072;
        let v = max_batch(&gpu, &model, &SystemModel::vllm(), seq);
        let q = max_batch(&gpu, &model, &SystemModel::qserve(), seq);
        let l = max_batch(&gpu, &model, &SystemModel::lserve(), seq);
        assert!(v <= q && q <= l, "{}: {v} {q} {l}", model.name);
    }
}
