//! Property tests for the quantization substrate.

use lserve_quant::{dequantize_group, quantize_group, KvPrecision, QuantizedTensor};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1000.0f32..1000.0).prop_map(|x| x)
}

proptest! {
    /// Round-trip error is bounded by half a quantization step for every element.
    #[test]
    fn int8_error_bound(xs in prop::collection::vec(finite_f32(), 1..256)) {
        let (codes, p) = quantize_group(&xs, KvPrecision::Int8);
        let back = dequantize_group(&codes, p);
        for (x, y) in xs.iter().zip(&back) {
            prop_assert!((x - y).abs() <= p.scale / 2.0 + p.scale * 1e-3 + 1e-6);
        }
    }

    #[test]
    fn int4_error_bound(xs in prop::collection::vec(finite_f32(), 1..64)) {
        let (codes, p) = quantize_group(&xs, KvPrecision::Int4);
        let back = dequantize_group(&codes, p);
        for (x, y) in xs.iter().zip(&back) {
            prop_assert!((x - y).abs() <= p.scale / 2.0 + p.scale * 1e-3 + 1e-6);
        }
    }

    /// Codes always fit the precision's level count.
    #[test]
    fn codes_within_levels(xs in prop::collection::vec(finite_f32(), 1..128)) {
        let (c8, _) = quantize_group(&xs, KvPrecision::Int8);
        prop_assert_eq!(c8.len(), xs.len()); // u8 codes cover the INT8 range by type

        let (c4, _) = quantize_group(&xs, KvPrecision::Int4);
        prop_assert!(c4.iter().all(|&c| c <= 15));
    }

    /// Quantization preserves per-group min and max (they map to exact codes).
    #[test]
    fn min_max_preserved(xs in prop::collection::vec(finite_f32(), 2..128)) {
        let (codes, p) = quantize_group(&xs, KvPrecision::Int8);
        let back = dequantize_group(&codes, p);
        let min_in = xs.iter().copied().fold(f32::INFINITY, f32::min);
        let max_in = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let min_out = back.iter().copied().fold(f32::INFINITY, f32::min);
        let max_out = back.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let tol = p.scale * 0.51 + (max_in.abs() + min_in.abs()) * 1e-5 + 1e-5;
        prop_assert!((min_in - min_out).abs() <= tol);
        prop_assert!((max_in - max_out).abs() <= tol);
    }

    /// The fused quantized dot equals the dot against the dequantized row.
    #[test]
    fn fused_dot_consistent(
        data in prop::collection::vec(-10.0f32..10.0, 16),
        query in prop::collection::vec(-2.0f32..2.0, 8),
    ) {
        let t = QuantizedTensor::quantize(&data, 2, 8, KvPrecision::Int4);
        for row in 0..2 {
            let deq = t.dequantize_row(row);
            let want: f32 = deq.iter().zip(&query).map(|(a, b)| a * b).sum();
            let got = t.dot_row(row, &query);
            prop_assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    /// Quantization is idempotent: re-quantizing dequantized data is exact.
    #[test]
    fn idempotent(xs in prop::collection::vec(finite_f32(), 1..64)) {
        let (codes, p) = quantize_group(&xs, KvPrecision::Int8);
        let once = dequantize_group(&codes, p);
        let (codes2, p2) = quantize_group(&once, KvPrecision::Int8);
        let twice = dequantize_group(&codes2, p2);
        for (a, b) in once.iter().zip(&twice) {
            let tol = (a.abs() + 1.0) * 1e-4;
            prop_assert!((a - b).abs() <= tol, "{a} vs {b}");
        }
    }
}
