//! Group quantization of token blocks and fused quantized dot products.

use crate::KvPrecision;

/// Scale and zero point for one quantization group.
///
/// Dequantization is `x = zero + code * scale`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantParams {
    /// Step size between adjacent codes.
    pub scale: f32,
    /// Value represented by code 0 (the group minimum).
    pub zero: f32,
}

/// Quantizes one group of values at the given precision.
///
/// Uses asymmetric min/max quantization: code 0 maps to the group minimum, the top
/// code to the maximum. Returns one code per input element (unpacked, one byte each)
/// plus the group's [`QuantParams`].
///
/// # Panics
///
/// Panics if `precision` is [`KvPrecision::Fp16`] (nothing to quantize) or `xs` is
/// empty.
pub fn quantize_group(xs: &[f32], precision: KvPrecision) -> (Vec<u8>, QuantParams) {
    let levels = precision
        .levels()
        .expect("quantize_group requires an integer precision") as f32;
    assert!(!xs.is_empty(), "cannot quantize an empty group");
    let min = xs.iter().copied().fold(f32::INFINITY, f32::min);
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let scale = if max > min { (max - min) / levels } else { 1.0 };
    let params = QuantParams { scale, zero: min };
    let codes = xs
        .iter()
        .map(|&x| {
            let q = ((x - min) / scale).round();
            q.clamp(0.0, levels) as u8
        })
        .collect();
    (codes, params)
}

/// Dequantizes a group of codes back to `f32`.
pub fn dequantize_group(codes: &[u8], params: QuantParams) -> Vec<f32> {
    codes
        .iter()
        .map(|&c| params.zero + c as f32 * params.scale)
        .collect()
}

/// A `(tokens x dim)` block quantized row-wise (one group per token row), with INT4
/// codes packed two per byte.
///
/// This mirrors the layout of a quantized KV page in QServe/LServe: token features
/// followed by per-token scale/zero metadata. The fused [`QuantizedTensor::dot_row`]
/// computes `dot(query, dequant(row))` without materializing the dequantized row, the
/// same algebra a GPU kernel uses:
///
/// `sum_i q_i (z + s c_i) = z * sum_i q_i + s * sum_i q_i c_i`.
///
/// # Example
///
/// ```
/// use lserve_quant::{KvPrecision, QuantizedTensor};
///
/// let data = vec![1.0, -1.0, 0.5, 2.0];
/// let t = QuantizedTensor::quantize(&data, 2, 2, KvPrecision::Int8);
/// let row0 = t.dequantize_row(0);
/// assert!((row0[0] - 1.0).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedTensor {
    precision: KvPrecision,
    tokens: usize,
    dim: usize,
    /// Packed codes: INT8 → one byte per element; INT4 → two elements per byte
    /// (low nibble first).
    packed: Vec<u8>,
    params: Vec<QuantParams>,
}

impl QuantizedTensor {
    /// Quantizes a row-major `(tokens x dim)` buffer, one quantization group per row.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != tokens * dim`, if `dim == 0`, or if `precision` is
    /// FP16.
    pub fn quantize(data: &[f32], tokens: usize, dim: usize, precision: KvPrecision) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len(), tokens * dim, "data length mismatch");
        assert!(
            precision.is_quantized(),
            "QuantizedTensor requires an integer precision"
        );
        let mut params = Vec::with_capacity(tokens);
        let mut packed = Vec::with_capacity(Self::packed_len(precision, tokens, dim));
        for t in 0..tokens {
            let (codes, p) = quantize_group(&data[t * dim..(t + 1) * dim], precision);
            params.push(p);
            match precision {
                KvPrecision::Int8 => packed.extend_from_slice(&codes),
                KvPrecision::Int4 => {
                    for pair in codes.chunks(2) {
                        let lo = pair[0] & 0x0F;
                        let hi = if pair.len() == 2 { pair[1] & 0x0F } else { 0 };
                        packed.push(lo | (hi << 4));
                    }
                }
                KvPrecision::Fp16 => unreachable!(),
            }
        }
        Self {
            precision,
            tokens,
            dim,
            packed,
            params,
        }
    }

    fn packed_len(precision: KvPrecision, tokens: usize, dim: usize) -> usize {
        match precision {
            KvPrecision::Int8 => tokens * dim,
            KvPrecision::Int4 => tokens * dim.div_ceil(2),
            KvPrecision::Fp16 => 0,
        }
    }

    /// Number of token rows.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Feature dimension per token.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Storage precision.
    pub fn precision(&self) -> KvPrecision {
        self.precision
    }

    /// Quantization parameters of row `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tokens`.
    pub fn params(&self, t: usize) -> QuantParams {
        self.params[t]
    }

    /// Raw code of element `(t, i)` as an integer in `[0, levels]`.
    #[inline]
    fn code(&self, t: usize, i: usize) -> u8 {
        match self.precision {
            KvPrecision::Int8 => self.packed[t * self.dim + i],
            KvPrecision::Int4 => {
                let row_bytes = self.dim.div_ceil(2);
                let byte = self.packed[t * row_bytes + i / 2];
                if i.is_multiple_of(2) {
                    byte & 0x0F
                } else {
                    byte >> 4
                }
            }
            KvPrecision::Fp16 => unreachable!(),
        }
    }

    /// Dequantizes row `t` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tokens`.
    pub fn dequantize_row(&self, t: usize) -> Vec<f32> {
        assert!(t < self.tokens, "row {t} out of bounds");
        let p = self.params[t];
        (0..self.dim)
            .map(|i| p.zero + self.code(t, i) as f32 * p.scale)
            .collect()
    }

    /// Dequantizes the whole block row-major.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.tokens * self.dim);
        for t in 0..self.tokens {
            out.extend(self.dequantize_row(t));
        }
        out
    }

    /// Fused `dot(query, dequant(row t))` without materializing the row.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != dim` or `t >= tokens`.
    pub fn dot_row(&self, t: usize, query: &[f32]) -> f32 {
        assert!(t < self.tokens, "row {t} out of bounds");
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let p = self.params[t];
        let mut q_sum = 0.0f32;
        let mut qc_sum = 0.0f32;
        for (i, &q) in query.iter().enumerate() {
            q_sum += q;
            qc_sum += q * self.code(t, i) as f32;
        }
        p.zero * q_sum + p.scale * qc_sum
    }

    /// Bytes this block would occupy on device, including scale/zero metadata
    /// (two f16 values per token row).
    pub fn device_bytes(&self) -> f64 {
        self.precision.bytes_for(self.tokens * self.dim) + self.tokens as f64 * 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_round_trip_error_within_half_step() {
        let xs = [0.0f32, 0.1, -3.3, 7.7, 2.5, -0.01, 6.0, 1.0];
        let (codes, p) = quantize_group(&xs, KvPrecision::Int8);
        let back = dequantize_group(&codes, p);
        for (x, y) in xs.iter().zip(&back) {
            assert!((x - y).abs() <= p.scale / 2.0 + 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn int4_round_trip_error_within_half_step() {
        let xs = [0.0f32, 0.5, 1.0, -1.0, 0.25, -0.75];
        let (codes, p) = quantize_group(&xs, KvPrecision::Int4);
        assert!(codes.iter().all(|&c| c <= 15));
        let back = dequantize_group(&codes, p);
        for (x, y) in xs.iter().zip(&back) {
            assert!((x - y).abs() <= p.scale / 2.0 + 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn constant_group_is_exact() {
        let xs = [4.2f32; 16];
        let (codes, p) = quantize_group(&xs, KvPrecision::Int4);
        let back = dequantize_group(&codes, p);
        for y in back {
            assert_eq!(y, 4.2);
        }
    }

    #[test]
    fn extremes_are_exact() {
        let xs = [-2.0f32, 0.3, 5.0];
        let (codes, p) = quantize_group(&xs, KvPrecision::Int8);
        let back = dequantize_group(&codes, p);
        assert!((back[0] - -2.0).abs() < 1e-5);
        assert!((back[2] - 5.0).abs() < 1e-4);
    }

    #[test]
    fn tensor_dequantize_row_matches_group_path() {
        let data: Vec<f32> = (0..12).map(|i| (i as f32 * 0.37).sin()).collect();
        let t = QuantizedTensor::quantize(&data, 3, 4, KvPrecision::Int8);
        for row in 0..3 {
            let (codes, p) = quantize_group(&data[row * 4..(row + 1) * 4], KvPrecision::Int8);
            let want = dequantize_group(&codes, p);
            assert_eq!(t.dequantize_row(row), want);
        }
    }

    #[test]
    fn int4_packing_round_trips_odd_dim() {
        let data: Vec<f32> = (0..15).map(|i| i as f32).collect();
        let t = QuantizedTensor::quantize(&data, 3, 5, KvPrecision::Int4);
        let back = t.dequantize();
        assert_eq!(back.len(), 15);
        for (x, y) in data.iter().zip(&back) {
            assert!((x - y).abs() <= t.params(0).scale / 2.0 + 0.3, "{x} vs {y}");
        }
    }

    #[test]
    fn fused_dot_matches_dequantized_dot() {
        let data: Vec<f32> = (0..32).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.3).collect();
        let t = QuantizedTensor::quantize(&data, 4, 8, KvPrecision::Int4);
        let q: Vec<f32> = (0..8).map(|i| (i as f32 * 0.11).cos()).collect();
        for row in 0..4 {
            let deq = t.dequantize_row(row);
            let want: f32 = deq.iter().zip(&q).map(|(a, b)| a * b).sum();
            let got = t.dot_row(row, &q);
            assert!((got - want).abs() < 1e-4, "row {row}: {got} vs {want}");
        }
    }

    #[test]
    fn device_bytes_counts_metadata() {
        let data = vec![0.0f32; 64 * 128];
        let t8 = QuantizedTensor::quantize(&data, 64, 128, KvPrecision::Int8);
        assert_eq!(t8.device_bytes(), 64.0 * 128.0 + 64.0 * 4.0);
        let t4 = QuantizedTensor::quantize(&data, 64, 128, KvPrecision::Int4);
        assert_eq!(t4.device_bytes(), 64.0 * 128.0 / 2.0 + 64.0 * 4.0);
    }

    #[test]
    #[should_panic(expected = "integer precision")]
    fn fp16_rejected() {
        let _ = quantize_group(&[1.0], KvPrecision::Fp16);
    }
}
