//! QServe-style low-bit KV quantization substrate.
//!
//! LServe stores past keys and values in quantized pages ("scaling factors and zero
//! points stored immediately after the token features", §3.2). This crate implements
//! the asymmetric uniform group quantization those pages use:
//!
//! * [`KvPrecision`] — FP16 / INT8 / INT4 storage precisions with their byte costs
//!   (the cost model uses these to compute memory traffic);
//! * [`quantize_group`] / [`QuantParams`] — per-group scale/zero quantization;
//! * [`QuantizedTensor`] — a `(tokens x dim)` block quantized row-wise, with packed
//!   INT4 nibbles, dequantization, and a fused quantized dot product that mirrors how
//!   a GPU kernel folds `scale`/`zero` into the accumulation.
//!
//! Quantization is *orthogonal* to block sparsity (paper §2.2): it shrinks the bytes
//! of each KV iteration while sparsity removes iterations. Keeping it as a separate
//! substrate lets every engine (vLLM-, QServe-, LServe-style) toggle it independently.

pub mod precision;
pub mod tensor;

pub use precision::KvPrecision;
pub use tensor::{dequantize_group, quantize_group, QuantParams, QuantizedTensor};
