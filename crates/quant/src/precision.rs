//! KV-cache storage precisions and their byte costs.

/// Storage precision for cached keys/values.
///
/// The reproduction simulates numerics in `f32`, but each precision declares the bit
/// width it would occupy on device; the cost model derives memory traffic from it and
/// the quantized kernels reproduce its rounding error faithfully.
///
/// # Example
///
/// ```
/// use lserve_quant::KvPrecision;
///
/// assert_eq!(KvPrecision::Int4.bits(), 4);
/// assert_eq!(KvPrecision::Fp16.bytes_for(128), 256.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KvPrecision {
    /// 16-bit floating point (vLLM baseline; stored losslessly here).
    #[default]
    Fp16,
    /// 8-bit asymmetric integer quantization.
    Int8,
    /// 4-bit asymmetric integer quantization (QServe's KV4).
    Int4,
}

impl KvPrecision {
    /// Bits per stored element.
    pub const fn bits(self) -> u32 {
        match self {
            KvPrecision::Fp16 => 16,
            KvPrecision::Int8 => 8,
            KvPrecision::Int4 => 4,
        }
    }

    /// Number of representable levels for the integer precisions
    /// (255 for INT8, 15 for INT4); `None` for FP16.
    pub const fn levels(self) -> Option<u32> {
        match self {
            KvPrecision::Fp16 => None,
            KvPrecision::Int8 => Some(255),
            KvPrecision::Int4 => Some(15),
        }
    }

    /// True for the integer (lossy) precisions.
    pub const fn is_quantized(self) -> bool {
        !matches!(self, KvPrecision::Fp16)
    }

    /// Bytes occupied by `n` elements at this precision (excluding scales/zeros).
    pub fn bytes_for(self, n: usize) -> f64 {
        n as f64 * self.bits() as f64 / 8.0
    }

    /// Bytes of quantization metadata (one f16 scale + one f16 zero per group) for
    /// `n` elements at the given group size. Zero for FP16.
    pub fn metadata_bytes_for(self, n: usize, group_size: usize) -> f64 {
        if !self.is_quantized() {
            return 0.0;
        }
        let groups = n.div_ceil(group_size);
        groups as f64 * 4.0
    }
}

impl std::fmt::Display for KvPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvPrecision::Fp16 => write!(f, "fp16"),
            KvPrecision::Int8 => write!(f, "int8"),
            KvPrecision::Int4 => write!(f, "int4"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_levels() {
        assert_eq!(KvPrecision::Fp16.bits(), 16);
        assert_eq!(KvPrecision::Int8.levels(), Some(255));
        assert_eq!(KvPrecision::Int4.levels(), Some(15));
        assert_eq!(KvPrecision::Fp16.levels(), None);
    }

    #[test]
    fn bytes_scale_with_precision() {
        assert_eq!(KvPrecision::Fp16.bytes_for(8), 16.0);
        assert_eq!(KvPrecision::Int8.bytes_for(8), 8.0);
        assert_eq!(KvPrecision::Int4.bytes_for(8), 4.0);
    }

    #[test]
    fn metadata_only_for_quantized() {
        assert_eq!(KvPrecision::Fp16.metadata_bytes_for(128, 64), 0.0);
        assert_eq!(KvPrecision::Int4.metadata_bytes_for(128, 64), 8.0);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(KvPrecision::Int4.to_string(), "int4");
    }
}
