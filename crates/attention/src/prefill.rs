//! Tiled block-sparse prefill attention kernel (§3.1, §3.4).
//!
//! The kernel walks the KV dimension tile-by-tile using a [`BlockPattern`] iterator
//! and folds each visited tile into per-query-row online softmax accumulators, so a
//! skipped tile costs nothing — exactly how the CUDA kernel shortens its sequential
//! loop. Outputs are bit-for-bit independent of the visiting order.

use lserve_tensor::{Matrix, OnlineSoftmax};

use crate::pattern::{BlockDecision, BlockPattern};

/// Work counters for one prefill call.
///
/// `tiles_visited / tiles_total_causal` is `1 - r` where `r` is the block sparsity of
/// §3.1; the analytical cost model multiplies dense kernel time by this ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefillStats {
    /// Tiles actually computed (Full or Causal).
    pub tiles_visited: u64,
    /// Tiles a dense causal kernel would compute.
    pub tiles_total_causal: u64,
}

impl PrefillStats {
    /// Block sparsity `r` (fraction of causal tiles skipped).
    pub fn sparsity(&self) -> f64 {
        if self.tiles_total_causal == 0 {
            return 0.0;
        }
        1.0 - self.tiles_visited as f64 / self.tiles_total_causal as f64
    }

    /// Theoretical speedup `1/(1-r)` over the dense kernel (§3.1).
    pub fn theoretical_speedup(&self) -> f64 {
        if self.tiles_visited == 0 {
            return f64::INFINITY;
        }
        self.tiles_total_causal as f64 / self.tiles_visited as f64
    }
}

/// Block-sparse prefill attention for one head.
///
/// `q`, `k`, `v` are `(N x D)` matrices for the same `N`-token prompt; `scale` is the
/// logit scale (`1/sqrt(D)`); `tq`/`tk` the tile sizes; `pattern` decides which tiles
/// are computed. Returns the `(N x D)` output and the tile counters.
///
/// Queries whose every tile is skipped (impossible for causally sound patterns, which
/// always visit the diagonal) would produce zero rows.
///
/// # Panics
///
/// Panics if shapes disagree or tile sizes are zero.
///
/// # Example
///
/// ```
/// use lserve_attention::{prefill_attention, DensePattern};
/// use lserve_tensor::{Matrix, SeededGaussian};
///
/// let mut g = SeededGaussian::new(1);
/// let (q, k, v) = (g.matrix(8, 4, 1.0), g.matrix(8, 4, 1.0), g.matrix(8, 4, 1.0));
/// let (out, stats) = prefill_attention(&q, &k, &v, 0.5, 4, 4, &DensePattern);
/// assert_eq!(out.shape(), (8, 4));
/// assert_eq!(stats.sparsity(), 0.0);
/// ```
pub fn prefill_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    scale: f32,
    tq: usize,
    tk: usize,
    pattern: &dyn BlockPattern,
) -> (Matrix, PrefillStats) {
    let n = q.rows();
    let d = q.cols();
    assert!(tq > 0 && tk > 0, "tile sizes must be positive");
    assert_eq!(k.rows(), n, "K rows mismatch");
    assert_eq!(v.rows(), n, "V rows mismatch");
    assert_eq!(k.cols(), d, "K dim mismatch");
    assert_eq!(v.cols(), d, "V dim mismatch");

    let num_qt = n.div_ceil(tq);
    let mut out = Matrix::zeros(n, d);
    let mut stats = PrefillStats::default();

    for qt in 0..num_qt {
        let q_start = qt * tq;
        let q_end = ((qt + 1) * tq).min(n);
        let mut accs: Vec<OnlineSoftmax> =
            (q_start..q_end).map(|_| OnlineSoftmax::new(d)).collect();

        // The §3.4 iterator: only visited blocks, offsets derived from block index.
        for (kb, decision) in pattern.blocks_for_tile(qt, tq, tk, n) {
            stats.tiles_visited += 1;
            let k_start = kb * tk;
            let k_end = ((kb + 1) * tk).min(n);
            for (qi_local, acc) in accs.iter_mut().enumerate() {
                let qi = q_start + qi_local;
                let q_row = q.row(qi);
                for kj in k_start..k_end {
                    if decision == BlockDecision::Causal && kj > qi {
                        continue; // elementwise mask only on the diagonal tile
                    }
                    let mut s = 0.0f32;
                    let k_row = k.row(kj);
                    for (a, b) in q_row.iter().zip(k_row) {
                        s += a * b;
                    }
                    acc.update(s * scale, v.row(kj));
                }
            }
        }
        for (qi_local, acc) in accs.into_iter().enumerate() {
            let o = acc.finish();
            out.row_mut(q_start + qi_local).copy_from_slice(&o);
        }
    }
    let (_, total) = crate::pattern::DensePattern.tile_counts(tq, tk, n);
    stats.tiles_total_causal = total;
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{DensePattern, MaskPattern, StreamingPattern};
    use crate::reference::{causal_attention_reference, masked_attention_reference};
    use lserve_tensor::SeededGaussian;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut g = SeededGaussian::new(seed);
        (
            g.matrix(n, d, 1.0),
            g.matrix(n, d, 1.0),
            g.matrix(n, d, 1.0),
        )
    }

    #[test]
    fn dense_pattern_matches_reference() {
        for &(n, tq, tk) in &[
            (16usize, 4usize, 4usize),
            (17, 4, 4),
            (32, 8, 4),
            (9, 16, 16),
        ] {
            let (q, k, v) = rand_qkv(n, 8, 77 + n as u64);
            let scale = 1.0 / (8f32).sqrt();
            let want = causal_attention_reference(&q, &k, &v, scale);
            let (got, stats) = prefill_attention(&q, &k, &v, scale, tq, tk, &DensePattern);
            assert!(
                got.max_abs_diff(&want) < 1e-4,
                "n={n} tq={tq} tk={tk}: diff {}",
                got.max_abs_diff(&want)
            );
            assert_eq!(stats.sparsity(), 0.0);
        }
    }

    #[test]
    fn streaming_pattern_matches_token_level_mask() {
        let n = 64;
        let b = 8;
        let (q, k, v) = rand_qkv(n, 8, 5);
        let scale = 1.0 / (8f32).sqrt();
        let p = StreamingPattern::new(1, 2);
        let (got, stats) = prefill_attention(&q, &k, &v, scale, b, b, &p);
        // Expand the block pattern to token level and use the masked reference.
        let want = masked_attention_reference(&q, &k, &v, scale, |i, j| {
            if j > i {
                return false;
            }
            let qt = i / b;
            let kb = j / b;
            kb < 1 || kb + 2 > qt
        });
        assert!(
            got.max_abs_diff(&want) < 1e-4,
            "diff {}",
            got.max_abs_diff(&want)
        );
        assert!(stats.sparsity() > 0.0);
    }

    #[test]
    fn mask_pattern_matches_token_level_mask() {
        let n = 40;
        let b = 8;
        let (q, k, v) = rand_qkv(n, 4, 9);
        let scale = 0.5;
        let m = MaskPattern::random_causal(n.div_ceil(b), n.div_ceil(b), 1, 123);
        let (got, _) = prefill_attention(&q, &k, &v, scale, b, b, &m);
        let want =
            masked_attention_reference(&q, &k, &v, scale, |i, j| j <= i && m.get(i / b, j / b));
        assert!(got.max_abs_diff(&want) < 1e-4);
    }

    #[test]
    fn stats_match_pattern_counts() {
        let n = 128;
        let p = StreamingPattern::new(1, 2);
        let (q, k, v) = rand_qkv(n, 4, 2);
        let (_, stats) = prefill_attention(&q, &k, &v, 0.5, 16, 16, &p);
        let (v_cnt, t_cnt) = p.tile_counts(16, 16, n);
        assert_eq!(stats.tiles_visited, v_cnt);
        assert_eq!(stats.tiles_total_causal, t_cnt);
    }

    #[test]
    fn theoretical_speedup_from_figure4() {
        let s = PrefillStats {
            tiles_visited: 10,
            tiles_total_causal: 21,
        };
        assert!((s.theoretical_speedup() - 2.1).abs() < 1e-12);
        assert!((s.sparsity() - (1.0 - 10.0 / 21.0)).abs() < 1e-12);
    }

    #[test]
    fn single_token_prompt() {
        let (q, k, v) = rand_qkv(1, 4, 3);
        let (got, _) = prefill_attention(&q, &k, &v, 0.5, 16, 16, &DensePattern);
        assert!(
            got.max_abs_diff(&v) < 1e-5,
            "single token must return its value"
        );
    }
}
