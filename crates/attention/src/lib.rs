//! Unified block-sparse attention kernels with the iterator-based block abstraction.
//!
//! This crate implements the paper's primary mechanism (§3.1, §3.4, §3.6): attention
//! computed block-by-block along the KV dimension, where each `TQ × TK` tile (prefill)
//! or `1 × P` page (decode) is either **fully computed** or **entirely skipped** —
//! never partially masked inside an iteration — so skipping blocks directly shortens
//! the sequential loop and yields the `1/(1−r)` speedup of Figure 4(b).
//!
//! * [`pattern`] — the §3.4 *iterator abstraction*: [`BlockPattern`]s enumerate
//!   exactly the blocks that need computing (dense causal, streaming Λ, arbitrary
//!   block masks, selected pages), replacing in-loop branching by offset arithmetic.
//! * [`reference`] — naive dense causal attention used as ground truth by every test.
//! * [`prefill`] — the tiled prefill kernel: online softmax across visited tiles,
//!   with per-call [`prefill::PrefillStats`] counting visited vs. total tiles (the
//!   quantity the cost model converts to GPU time).
//! * [`decode`] — the paged decode kernel: one query row against a page table,
//!   optionally restricted to selected pages, reading (de)quantized pages through the
//!   [`lserve_kvcache::PagePool`].
//! * [`dynamic`] — MInference-style query-aware prefill block masks (§4.3): the
//!   Eq. 2 min/max bound lifted to tiles, feeding [`pattern::MaskPattern`].
//! * [`fused`] — the layer-level hybrid kernel of §3.6: dense and streaming heads
//!   dispatched in one call over the two-way KV cache, GQA query→KV head mapping
//!   included.
//! * [`parallel`] — the sparsity-aware multi-threaded execution layer: per-head
//!   attention shards, LPT cost balancing, and a scoped-thread worker pool with
//!   work stealing (std only), bit-identical to serial execution at every thread
//!   count.

pub mod decode;
pub mod dynamic;
pub mod fused;
pub mod parallel;
pub mod pattern;
pub mod prefill;
pub mod reference;

pub use decode::{decode_dense_head, decode_streaming_head, DecodeStats};
pub use dynamic::build_dynamic_prefill_mask;
pub use fused::{
    fused_decode_layer, fused_prefill_layer, fused_prefill_layer_dynamic,
    fused_prefill_layer_threads, HeadKind, LayerAttnConfig,
};
pub use parallel::{
    lpt_assign, run_decode_shard, run_placed, run_sharded, BalanceStats, DecodeShard, PlacedBalance,
};
pub use pattern::{BlockDecision, BlockPattern, DensePattern, MaskPattern, StreamingPattern};
pub use prefill::{prefill_attention, PrefillStats};
pub use reference::{causal_attention_reference, masked_attention_reference};
