//! Query-aware dynamic block sparsity for prefill (MInference-style).
//!
//! The paper integrates MInference's prefill sparsity for very long prompts ("LServe
//! is also compatible with the prefilling dynamic sparsity in MInference, which we
//! activated after 128K", §4.3). This module builds the per-head block mask: every
//! query tile keeps its causal diagonal, the sink blocks, and the top-`k` past KV
//! blocks ranked by a Quest-style min/max affinity bound between the tile's pooled
//! query and each block's key statistics — the same Eq. 2 machinery the decode
//! selector uses, lifted to tiles.

use lserve_kvcache::LogicalPageStats;
use lserve_tensor::Matrix;

use crate::pattern::MaskPattern;

/// Builds a query-aware prefill block mask for one head.
///
/// `q`, `k` are the head's `(N x D)` activations; `tile` is the square block size;
/// `keep_per_tile` is the number of *extra* past blocks each query tile retains
/// beyond the always-kept diagonal and `sink_blocks`; the resulting density per row
/// is roughly `(keep_per_tile + sink_blocks + 1) / row_blocks`.
///
/// The scoring is an upper bound (channelwise min/max of keys against the tile-mean
/// query), so blocks containing any key strongly aligned with the tile's queries
/// rank high — the property that makes the mask safe for retrieval-style prompts.
///
/// # Panics
///
/// Panics if shapes disagree or `tile == 0`.
///
/// # Example
///
/// ```
/// use lserve_attention::dynamic::build_dynamic_prefill_mask;
/// use lserve_tensor::SeededGaussian;
///
/// let mut g = SeededGaussian::new(1);
/// let q = g.matrix(64, 8, 1.0);
/// let k = g.matrix(64, 8, 1.0);
/// let mask = build_dynamic_prefill_mask(&q, &k, 16, 1, 1);
/// // Diagonal always kept.
/// assert!(mask.get(3, 3));
/// ```
pub fn build_dynamic_prefill_mask(
    q: &Matrix,
    k: &Matrix,
    tile: usize,
    keep_per_tile: usize,
    sink_blocks: usize,
) -> MaskPattern {
    assert!(tile > 0, "tile must be positive");
    assert_eq!(q.rows(), k.rows(), "Q/K rows mismatch");
    assert_eq!(q.cols(), k.cols(), "Q/K dim mismatch");
    let n = q.rows();
    let d = q.cols();
    let nb = n.div_ceil(tile);

    // Per-KV-block key statistics (kmin/kmax per channel).
    let block_stats: Vec<LogicalPageStats> = (0..nb)
        .map(|b| {
            let mut s = LogicalPageStats::new(d);
            for t in b * tile..((b + 1) * tile).min(n) {
                s.update(k.row(t));
            }
            s
        })
        .collect();

    let mut mask = MaskPattern::new(nb, nb);
    let mut scores: Vec<(usize, f32)> = Vec::with_capacity(nb);
    for qt in 0..nb {
        // Pooled query for the tile: the mean row. Mean pooling is what MInference's
        // offline pattern search approximates online; the min/max bound on the key
        // side compensates for within-tile query variance.
        let mut q_mean = vec![0.0f32; d];
        let rows = (qt * tile..((qt + 1) * tile).min(n)).collect::<Vec<_>>();
        for &r in &rows {
            for (acc, &x) in q_mean.iter_mut().zip(q.row(r)) {
                *acc += x;
            }
        }
        let inv = 1.0 / rows.len() as f32;
        for x in &mut q_mean {
            *x *= inv;
        }

        // Always keep the diagonal and the sinks.
        mask.set(qt, qt.min(nb - 1));
        for s in 0..sink_blocks.min(nb) {
            if s <= qt {
                mask.set(qt, s);
            }
        }
        // Rank strictly-past, non-sink blocks.
        scores.clear();
        for (kb, stats) in block_stats.iter().enumerate().take(qt).skip(sink_blocks) {
            scores.push((kb, stats.importance(&q_mean)));
        }
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for &(kb, _) in scores.iter().take(keep_per_tile) {
            mask.set(qt, kb);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{BlockDecision, BlockPattern};
    use crate::prefill::prefill_attention;
    use crate::reference::causal_attention_reference;
    use lserve_tensor::SeededGaussian;

    #[test]
    fn diagonal_and_sinks_always_kept() {
        let mut g = SeededGaussian::new(2);
        let q = g.matrix(96, 8, 1.0);
        let k = g.matrix(96, 8, 1.0);
        let mask = build_dynamic_prefill_mask(&q, &k, 16, 0, 1);
        for qt in 0..6 {
            assert!(mask.get(qt, qt), "diagonal tile {qt}");
            assert!(mask.get(qt, 0), "sink from tile {qt}");
        }
    }

    #[test]
    fn density_matches_keep_budget() {
        let mut g = SeededGaussian::new(3);
        let q = g.matrix(128, 8, 1.0);
        let k = g.matrix(128, 8, 1.0);
        let keep = 2;
        let mask = build_dynamic_prefill_mask(&q, &k, 16, keep, 1);
        for qt in 0..8 {
            let visited = mask.blocks_for_tile(qt, 16, 16, 128).len();
            // diagonal + sink + up to `keep` extras, capped by causality.
            assert!(visited <= 2 + keep, "tile {qt}: {visited}");
        }
    }

    #[test]
    fn high_affinity_block_is_retained() {
        // Plant a "needle" block whose keys align with the last tile's queries.
        let mut g = SeededGaussian::new(4);
        let n = 160;
        let d = 8;
        let tile = 16;
        let mut q = g.matrix(n, d, 0.3);
        let mut k = g.matrix(n, d, 0.3);
        let needle_block = 3usize;
        for t in needle_block * tile..(needle_block + 1) * tile {
            k.row_mut(t)[0] = 5.0;
        }
        let last_tile = n / tile - 1;
        for t in last_tile * tile..n {
            q.row_mut(t)[0] = 5.0;
        }
        let mask = build_dynamic_prefill_mask(&q, &k, tile, 1, 0);
        assert!(
            mask.get(last_tile, needle_block),
            "needle block must win the single keep slot"
        );
    }

    #[test]
    fn masked_prefill_tracks_reference_on_retrieval_structure() {
        // When attention mass concentrates in a few blocks, the dynamic mask's
        // output stays close to dense attention while visiting far fewer tiles.
        let mut g = SeededGaussian::new(5);
        let n = 128;
        let d = 8;
        let tile = 16;
        let mut q = g.matrix(n, d, 0.2);
        let mut k = g.matrix(n, d, 0.2);
        let v = g.matrix(n, d, 1.0);
        // Every query strongly attends block 1.
        for t in tile..2 * tile {
            k.row_mut(t)[2] = 4.0;
        }
        for t in 0..n {
            q.row_mut(t)[2] = 4.0;
        }
        let scale = 1.0 / (d as f32).sqrt();
        let mask = build_dynamic_prefill_mask(&q, &k, tile, 1, 1);
        let (sparse, stats) = prefill_attention(&q, &k, &v, scale, tile, tile, &mask);
        let dense = causal_attention_reference(&q, &k, &v, scale);
        assert!(
            stats.sparsity() > 0.3,
            "mask must skip tiles: {}",
            stats.sparsity()
        );
        // Compare on the late rows (early rows have few causal blocks anyway).
        let mut worst = 0.0f32;
        for r in n / 2..n {
            for c in 0..d {
                worst = worst.max((sparse[(r, c)] - dense[(r, c)]).abs());
            }
        }
        assert!(worst < 0.15, "sparse drifted from dense: {worst}");
    }

    #[test]
    fn mask_is_causally_sound() {
        let mut g = SeededGaussian::new(6);
        let q = g.matrix(80, 8, 1.0);
        let k = g.matrix(80, 8, 1.0);
        let mask = build_dynamic_prefill_mask(&q, &k, 16, 3, 1);
        for qt in 0..5 {
            for (kb, decision) in mask.blocks_for_tile(qt, 16, 16, 80) {
                assert!(kb <= qt);
                if kb == qt {
                    assert_eq!(decision, BlockDecision::Causal);
                }
            }
        }
    }
}
