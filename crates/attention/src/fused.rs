//! Fused layer-level hybrid attention (§3.2 prefill dataflow, §3.6 decode kernel).
//!
//! One call processes every head of a layer: dense (retrieval) heads with full causal
//! or page-selected attention and streaming heads with the Λ pattern, mirroring the
//! single fused CUDA kernel that "enables different sparsity patterns to be applied
//! independently on each head". GQA's query→KV head mapping (`h_kv = h / n`, Eq. 1)
//! is applied here.

use lserve_kvcache::{LayerKvCache, PagePool};
use lserve_tensor::Matrix;

use crate::decode::DecodeStats;
use crate::dynamic::build_dynamic_prefill_mask;
use crate::parallel::{run_decode_shard, run_sharded, BalanceStats, DecodeShard};
use crate::pattern::{DensePattern, StreamingPattern};
use crate::prefill::{prefill_attention, PrefillStats};

/// Static classification of one KV head (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadKind {
    /// Retrieval head: full history, eligible for dynamic page sparsity.
    Dense,
    /// Streaming head: Λ mask (sink + local blocks).
    Streaming,
}

/// Geometry of a layer's attention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerAttnConfig {
    /// Number of query heads `H`.
    pub num_q_heads: usize,
    /// Number of KV heads `Ĥ` (equal to `H` for MHA, smaller for GQA).
    pub num_kv_heads: usize,
    /// Per-head feature dimension `D`.
    pub head_dim: usize,
    /// Square tile size (`TQ = TK`) for prefill block sparsity.
    pub tile: usize,
    /// Streaming pattern for streaming heads (in blocks of `tile` tokens for
    /// prefill; in physical pages for decode).
    pub sink_blocks: usize,
    /// Local blocks of the streaming pattern.
    pub local_blocks: usize,
}

impl LayerAttnConfig {
    /// Query heads per KV head (`n` in Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `num_q_heads` is not a multiple of `num_kv_heads`.
    pub fn group_size(&self) -> usize {
        assert_eq!(
            self.num_q_heads % self.num_kv_heads,
            0,
            "query heads must divide into KV heads"
        );
        self.num_q_heads / self.num_kv_heads
    }

    /// KV head serving query head `h`.
    pub fn kv_head_of(&self, h: usize) -> usize {
        h / self.group_size()
    }

    /// Logit scale `1/sqrt(D)`.
    pub fn scale(&self) -> f32 {
        1.0 / (self.head_dim as f32).sqrt()
    }
}

/// Extracts head `h`'s column block from a `(N x heads*D)` activation matrix.
fn head_slice(m: &Matrix, h: usize, d: usize) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), d);
    for r in 0..m.rows() {
        out.row_mut(r)
            .copy_from_slice(&m.row(r)[h * d..(h + 1) * d]);
    }
    out
}

/// Fused block-sparse prefill over all heads of one layer.
///
/// `q` is `(N x H·D)`; `k`, `v` are `(N x Ĥ·D)`; `kinds` classifies each **KV** head
/// (query heads inherit their KV head's kind, since streaming heads drop the KV that
/// grouped query heads would need). Returns the `(N x H·D)` attention output plus
/// aggregate tile counters split by head kind.
///
/// # Panics
///
/// Panics on shape mismatches or if `kinds.len() != num_kv_heads`.
pub fn fused_prefill_layer(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &LayerAttnConfig,
    kinds: &[HeadKind],
) -> (Matrix, PrefillStats, PrefillStats) {
    let (out, dense, stream, _) = fused_prefill_layer_threads(q, k, v, cfg, kinds, None, 1);
    (out, dense, stream)
}

/// One query head's unit of prefill work inside the sharded layer kernel.
struct PrefillShard {
    h: usize,
    kind: HeadKind,
    qh: Matrix,
    kh: Matrix,
    vh: Matrix,
    out: Matrix,
    stats: PrefillStats,
}

/// Sharded variant of [`fused_prefill_layer`] / [`fused_prefill_layer_dynamic`]:
/// each query head is one shard, executed across up to `threads` scoped worker
/// threads with an LPT assignment by estimated tile cost (dense heads grow
/// quadratically with the prompt, streaming heads linearly — the per-head
/// sparsity asymmetry that makes naive partitioning unbalanced).
///
/// `dynamic_keep` selects the MInference-style dynamic mask for dense heads
/// (`Some(keep)`) or full causal attention (`None`). Outputs are bit-identical
/// to the single-threaded functions for every thread count: each shard computes
/// into its own buffer with the same kernel on the same inputs, and the scatter
/// into the layer output runs serially in head order.
///
/// # Panics
///
/// Same shape requirements as [`fused_prefill_layer`].
pub fn fused_prefill_layer_threads(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &LayerAttnConfig,
    kinds: &[HeadKind],
    dynamic_keep: Option<usize>,
    threads: usize,
) -> (Matrix, PrefillStats, PrefillStats, BalanceStats) {
    let n = q.rows();
    let d = cfg.head_dim;
    assert_eq!(q.cols(), cfg.num_q_heads * d, "Q width mismatch");
    assert_eq!(k.cols(), cfg.num_kv_heads * d, "K width mismatch");
    assert_eq!(v.cols(), cfg.num_kv_heads * d, "V width mismatch");
    assert_eq!(k.rows(), n, "K rows mismatch");
    assert_eq!(kinds.len(), cfg.num_kv_heads, "kinds length mismatch");

    let streaming = StreamingPattern::new(cfg.sink_blocks, cfg.local_blocks);
    let nt = n.div_ceil(cfg.tile) as u64;
    let causal_tiles = nt * (nt + 1) / 2;
    let mut shards: Vec<PrefillShard> = Vec::with_capacity(cfg.num_q_heads);
    let mut costs: Vec<u64> = Vec::with_capacity(cfg.num_q_heads);
    for h in 0..cfg.num_q_heads {
        let kv = cfg.kv_head_of(h);
        // Estimated tiles the shard will visit: the sparsity-aware signal the
        // LPT assignment balances on.
        let cost = match (kinds[kv], dynamic_keep) {
            (HeadKind::Streaming, _) => {
                (nt * (cfg.sink_blocks + cfg.local_blocks + 1) as u64).min(causal_tiles)
            }
            (HeadKind::Dense, Some(keep)) => {
                (nt * (keep + cfg.sink_blocks + 1) as u64).min(causal_tiles)
            }
            (HeadKind::Dense, None) => causal_tiles,
        };
        costs.push(cost.max(1));
        shards.push(PrefillShard {
            h,
            kind: kinds[kv],
            qh: head_slice(q, h, d),
            kh: head_slice(k, kv, d),
            vh: head_slice(v, kv, d),
            out: Matrix::zeros(0, 0),
            stats: PrefillStats::default(),
        });
    }

    let balance = run_sharded(threads, &costs, &mut shards, |s| {
        let (oh, stats) = match s.kind {
            HeadKind::Dense => match dynamic_keep {
                None => prefill_attention(
                    &s.qh,
                    &s.kh,
                    &s.vh,
                    cfg.scale(),
                    cfg.tile,
                    cfg.tile,
                    &DensePattern,
                ),
                Some(keep) => {
                    let mask =
                        build_dynamic_prefill_mask(&s.qh, &s.kh, cfg.tile, keep, cfg.sink_blocks);
                    prefill_attention(&s.qh, &s.kh, &s.vh, cfg.scale(), cfg.tile, cfg.tile, &mask)
                }
            },
            HeadKind::Streaming => prefill_attention(
                &s.qh,
                &s.kh,
                &s.vh,
                cfg.scale(),
                cfg.tile,
                cfg.tile,
                &streaming,
            ),
        };
        s.out = oh;
        s.stats = stats;
    });

    let mut out = Matrix::zeros(n, cfg.num_q_heads * d);
    let mut dense_stats = PrefillStats::default();
    let mut stream_stats = PrefillStats::default();
    for s in &shards {
        let agg = match s.kind {
            HeadKind::Dense => &mut dense_stats,
            HeadKind::Streaming => &mut stream_stats,
        };
        agg.tiles_visited += s.stats.tiles_visited;
        agg.tiles_total_causal += s.stats.tiles_total_causal;
        for r in 0..n {
            out.row_mut(r)[s.h * d..(s.h + 1) * d].copy_from_slice(s.out.row(r));
        }
    }
    (out, dense_stats, stream_stats, balance)
}

/// Fused decode over all heads of one layer against the two-way paged cache.
///
/// `q` is the current token's query activations (`H·D`); `selections[kv]`, when
/// `Some`, is the selected physical-page index list for dense KV head `kv` (the
/// shorter page table from the selector); `None` means attend the full history.
/// Selections on streaming heads are ignored — their page table *is* the sink+local
/// selection.
///
/// Returns the `H·D` output and aggregate per-kind decode counters.
///
/// # Panics
///
/// Panics on shape mismatches, `selections.len() != num_kv_heads`, or if the cache
/// disagrees with `cfg` about head count.
pub fn fused_decode_layer(
    pool: &PagePool,
    cache: &LayerKvCache,
    q: &[f32],
    cfg: &LayerAttnConfig,
    selections: &[Option<Vec<usize>>],
) -> (Vec<f32>, DecodeStats, DecodeStats) {
    let d = cfg.head_dim;
    assert_eq!(q.len(), cfg.num_q_heads * d, "query width mismatch");
    assert_eq!(
        cache.num_heads(),
        cfg.num_kv_heads,
        "cache head count mismatch"
    );
    assert_eq!(
        selections.len(),
        cfg.num_kv_heads,
        "selections length mismatch"
    );

    let group = cfg.group_size();
    let mut out = vec![0.0f32; cfg.num_q_heads * d];
    let mut dense_stats = DecodeStats::default();
    let mut stream_stats = DecodeStats::default();

    // One shard per KV head, executed serially: the degenerate (single-worker)
    // case of the sharded decode path the executor parallelizes.
    for (kv, out_chunk) in out.chunks_mut(group * d).enumerate() {
        let mut shard = DecodeShard {
            head: cache.head(kv),
            queries: &q[kv * group * d..(kv + 1) * group * d],
            selection: selections[kv].as_deref(),
            head_dim: d,
            scale: cfg.scale(),
            out: out_chunk,
            dense: DecodeStats::default(),
            streaming: DecodeStats::default(),
        };
        run_decode_shard(pool, &mut shard);
        dense_stats.accumulate(shard.dense);
        stream_stats.accumulate(shard.streaming);
    }
    (out, dense_stats, stream_stats)
}

/// Like [`fused_prefill_layer`], but retrieval (dense) heads run MInference-style
/// *dynamic* block sparsity instead of full causal attention: each head builds its
/// own query-aware mask keeping the diagonal, the sink blocks, and `keep_per_tile`
/// top-affinity past blocks per query tile (§4.3, activated for very long prompts).
/// Streaming heads behave exactly as in the static variant.
///
/// # Panics
///
/// Same shape requirements as [`fused_prefill_layer`].
pub fn fused_prefill_layer_dynamic(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &LayerAttnConfig,
    kinds: &[HeadKind],
    keep_per_tile: usize,
) -> (Matrix, PrefillStats, PrefillStats) {
    let (out, dense, stream, _) =
        fused_prefill_layer_threads(q, k, v, cfg, kinds, Some(keep_per_tile), 1);
    (out, dense, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode_dense_head, decode_streaming_head};
    use crate::reference::causal_attention_reference;
    use lserve_kvcache::{PagingConfig, StreamingWindow};
    use lserve_quant::KvPrecision;
    use lserve_tensor::SeededGaussian;

    fn cfg() -> LayerAttnConfig {
        LayerAttnConfig {
            num_q_heads: 4,
            num_kv_heads: 2,
            head_dim: 8,
            tile: 4,
            sink_blocks: 1,
            local_blocks: 2,
        }
    }

    #[test]
    fn gqa_mapping() {
        let c = cfg();
        assert_eq!(c.group_size(), 2);
        assert_eq!(c.kv_head_of(0), 0);
        assert_eq!(c.kv_head_of(1), 0);
        assert_eq!(c.kv_head_of(2), 1);
        assert_eq!(c.kv_head_of(3), 1);
    }

    #[test]
    fn all_dense_prefill_matches_per_head_reference() {
        let c = cfg();
        let mut g = SeededGaussian::new(100);
        let n = 12;
        let q = g.matrix(n, c.num_q_heads * c.head_dim, 1.0);
        let k = g.matrix(n, c.num_kv_heads * c.head_dim, 1.0);
        let v = g.matrix(n, c.num_kv_heads * c.head_dim, 1.0);
        let kinds = [HeadKind::Dense, HeadKind::Dense];
        let (out, dense, stream) = fused_prefill_layer(&q, &k, &v, &c, &kinds);
        assert_eq!(stream.tiles_visited, 0);
        assert!(dense.tiles_visited > 0);
        for h in 0..c.num_q_heads {
            let kv = c.kv_head_of(h);
            let qh = head_slice(&q, h, c.head_dim);
            let kh = head_slice(&k, kv, c.head_dim);
            let vh = head_slice(&v, kv, c.head_dim);
            let want = causal_attention_reference(&qh, &kh, &vh, c.scale());
            let got = head_slice(&out, h, c.head_dim);
            assert!(got.max_abs_diff(&want) < 1e-4, "head {h}");
        }
    }

    #[test]
    fn mixed_kinds_split_tile_counters() {
        let c = cfg();
        let mut g = SeededGaussian::new(4);
        let n = 32;
        let q = g.matrix(n, c.num_q_heads * c.head_dim, 1.0);
        let k = g.matrix(n, c.num_kv_heads * c.head_dim, 1.0);
        let v = g.matrix(n, c.num_kv_heads * c.head_dim, 1.0);
        let kinds = [HeadKind::Dense, HeadKind::Streaming];
        let (_, dense, stream) = fused_prefill_layer(&q, &k, &v, &c, &kinds);
        assert!(dense.tiles_visited > 0 && stream.tiles_visited > 0);
        // Streaming heads must visit strictly fewer tiles than their causal total.
        assert!(stream.tiles_visited < stream.tiles_total_causal);
        assert_eq!(dense.tiles_visited, dense.tiles_total_causal);
    }

    #[test]
    fn fused_decode_matches_single_head_kernels() {
        let c = cfg();
        let pcfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(pcfg, 256, c.head_dim);
        let mut cache = LayerKvCache::new(&[false, true], StreamingWindow::new(1, 2));
        let mut g = SeededGaussian::new(55);
        let n = 25;
        for _ in 0..n {
            let keys: Vec<f32> = (0..c.num_kv_heads * c.head_dim)
                .map(|_| g.sample())
                .collect();
            let vals: Vec<f32> = (0..c.num_kv_heads * c.head_dim)
                .map(|_| g.sample())
                .collect();
            assert!(cache.append_token(&mut pool, &keys, &vals, c.head_dim));
        }
        let q: Vec<f32> = (0..c.num_q_heads * c.head_dim)
            .map(|_| g.sample())
            .collect();
        let selections = vec![None, None];
        let (out, dstats, sstats) = fused_decode_layer(&pool, &cache, &q, &c, &selections);
        assert!(dstats.tokens_visited > 0 && sstats.tokens_visited > 0);
        // Check head 0 (dense) and head 2 (streaming via kv head 1) against the
        // single-head kernels.
        let d = c.head_dim;
        let (want0, _) =
            decode_dense_head(&pool, cache.head(0).as_dense(), &q[0..d], c.scale(), None);
        for (a, b) in out[0..d].iter().zip(&want0) {
            assert!((a - b).abs() < 1e-6);
        }
        let (want2, _) = decode_streaming_head(
            &pool,
            cache.head(1).as_streaming(),
            &q[2 * d..3 * d],
            c.scale(),
        );
        for (a, b) in out[2 * d..3 * d].iter().zip(&want2) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn dynamic_prefill_skips_tiles_but_tracks_output_shape() {
        let c = cfg();
        let mut g = SeededGaussian::new(71);
        let n = 48;
        let q = g.matrix(n, c.num_q_heads * c.head_dim, 1.0);
        let k = g.matrix(n, c.num_kv_heads * c.head_dim, 1.0);
        let v = g.matrix(n, c.num_kv_heads * c.head_dim, 1.0);
        let kinds = [HeadKind::Dense, HeadKind::Dense];
        let (out, dense, _) = fused_prefill_layer_dynamic(&q, &k, &v, &c, &kinds, 2);
        assert_eq!(out.shape(), (n, c.num_q_heads * c.head_dim));
        assert!(dense.tiles_visited < dense.tiles_total_causal);
        // Enormous keep budget == dense attention exactly.
        let (full, stats_full, _) = fused_prefill_layer_dynamic(&q, &k, &v, &c, &kinds, 1000);
        let (want, _, _) = fused_prefill_layer(&q, &k, &v, &c, &kinds);
        assert_eq!(stats_full.tiles_visited, stats_full.tiles_total_causal);
        assert!(full.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn threaded_prefill_bit_identical_to_serial() {
        let c = cfg();
        let mut g = SeededGaussian::new(23);
        let n = 40;
        let q = g.matrix(n, c.num_q_heads * c.head_dim, 1.0);
        let k = g.matrix(n, c.num_kv_heads * c.head_dim, 1.0);
        let v = g.matrix(n, c.num_kv_heads * c.head_dim, 1.0);
        let kinds = [HeadKind::Dense, HeadKind::Streaming];
        for dynamic_keep in [None, Some(2)] {
            let (want, wd, ws, _) =
                fused_prefill_layer_threads(&q, &k, &v, &c, &kinds, dynamic_keep, 1);
            for threads in [2, 3, 8] {
                let (got, gd, gs, balance) =
                    fused_prefill_layer_threads(&q, &k, &v, &c, &kinds, dynamic_keep, threads);
                assert_eq!(got.max_abs_diff(&want), 0.0, "threads {threads}");
                assert_eq!((gd, gs), (wd, ws));
                assert_eq!(balance.shards, c.num_q_heads as u64);
                assert!(balance.workers <= threads);
            }
        }
    }

    #[test]
    fn streaming_decode_visits_fewer_pages() {
        let c = cfg();
        let pcfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(pcfg, 1024, c.head_dim);
        let mut cache = LayerKvCache::new(&[false, true], StreamingWindow::new(1, 2));
        let mut g = SeededGaussian::new(9);
        for _ in 0..100 {
            let keys: Vec<f32> = (0..c.num_kv_heads * c.head_dim)
                .map(|_| g.sample())
                .collect();
            let vals: Vec<f32> = (0..c.num_kv_heads * c.head_dim)
                .map(|_| g.sample())
                .collect();
            assert!(cache.append_token(&mut pool, &keys, &vals, c.head_dim));
        }
        let q: Vec<f32> = (0..c.num_q_heads * c.head_dim)
            .map(|_| g.sample())
            .collect();
        let (_, dstats, sstats) = fused_decode_layer(&pool, &cache, &q, &c, &[None, None]);
        // Dense kv head serves 2 query heads over 25 pages each; streaming <= 3 pages.
        assert_eq!(dstats.pages_visited, 50);
        assert!(sstats.pages_visited <= 6);
    }
}
