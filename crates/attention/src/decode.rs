//! Paged decode attention kernel (`TQ = 1`, §3.1 and §3.6).
//!
//! One query row attends a page table through the [`PagePool`]. Dense heads may be
//! restricted to a selected subset of physical pages (the dynamic sparsity of
//! Figure 4(d): "a dense attention kernel with shorter page tables", §3.2);
//! streaming heads iterate their resident sink+local pages, which *is* their whole
//! page table ("streaming heads are treated as dynamic sparse heads with index table
//! only containing the sink and local pages", §3.6).

use lserve_kvcache::{DenseHeadCache, PagePool, StreamingHeadCache};
use lserve_tensor::OnlineSoftmax;

/// Work counters for one decode-attention call (one head, one step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeStats {
    /// Physical pages the kernel iterated over.
    pub pages_visited: u64,
    /// Token rows folded into the softmax.
    pub tokens_visited: u64,
    /// Pages a dense kernel over the full history would have iterated.
    pub pages_total: u64,
}

impl DecodeStats {
    /// Accumulates another head's counters (used by the fused layer kernel).
    pub fn accumulate(&mut self, other: DecodeStats) {
        self.pages_visited += other.pages_visited;
        self.tokens_visited += other.tokens_visited;
        self.pages_total += other.pages_total;
    }
}

/// Decode attention for a dense head.
///
/// `selected_pages`, when given, lists indices into `cache.page_table()` to visit
/// (the shorter page table produced by the page selector); `None` means dense
/// attention over the full history. The visiting order does not affect the output
/// (online softmax is order-invariant).
///
/// # Panics
///
/// Panics if `q.len()` differs from the cache's head dimension, or a selected page
/// index is out of range.
pub fn decode_dense_head(
    pool: &PagePool,
    cache: &DenseHeadCache,
    q: &[f32],
    scale: f32,
    selected_pages: Option<&[usize]>,
) -> (Vec<f32>, DecodeStats) {
    let table = cache.page_table();
    let mut acc = OnlineSoftmax::new(q.len());
    let mut stats = DecodeStats {
        pages_total: table.len() as u64,
        ..DecodeStats::default()
    };
    let mut visit = |page_idx: usize| {
        // Residency precondition of the tiered KV memory: only hot
        // (device-resident) pages may feed the kernel — a cold page must be
        // promoted by the executor's residency pass before decode runs.
        assert!(
            pool.is_hot(table[page_idx]),
            "decode kernel read of cold page {:?} (page {page_idx}): promote before attending",
            table[page_idx]
        );
        let page = pool.page(table[page_idx]);
        assert_eq!(page.head_dim(), q.len(), "query dimension mismatch");
        stats.pages_visited += 1;
        for t in 0..page.len() {
            let mut s = 0.0f32;
            for (a, b) in q.iter().zip(page.key_row(t)) {
                s += a * b;
            }
            acc.update(s * scale, page.value_row(t));
            stats.tokens_visited += 1;
        }
    };
    match selected_pages {
        Some(sel) => {
            for &p in sel {
                assert!(
                    p < table.len(),
                    "selected page {p} out of range ({})",
                    table.len()
                );
                visit(p);
            }
        }
        None => {
            for p in 0..table.len() {
                visit(p);
            }
        }
    }
    (acc.finish(), stats)
}

/// Decode attention for a streaming head: visits exactly the resident sink and local
/// pages.
///
/// # Panics
///
/// Panics if `q.len()` differs from the cache's head dimension.
pub fn decode_streaming_head(
    pool: &PagePool,
    cache: &StreamingHeadCache,
    q: &[f32],
    scale: f32,
) -> (Vec<f32>, DecodeStats) {
    let table = cache.page_table(pool);
    let full_pages = pool.config().pages_for(cache.tokens());
    let mut acc = OnlineSoftmax::new(q.len());
    let mut stats = DecodeStats {
        pages_total: full_pages as u64,
        ..DecodeStats::default()
    };
    for (_, id) in table {
        // Streaming windows are working sets and never demoted while the
        // sequence runs, but a swapped-in sequence must have been fully
        // promoted before decoding — enforce the same residency precondition.
        assert!(
            pool.is_hot(id),
            "streaming decode read of cold page {id:?}: promote before attending"
        );
        let page = pool.page(id);
        assert_eq!(page.head_dim(), q.len(), "query dimension mismatch");
        stats.pages_visited += 1;
        for t in 0..page.len() {
            let mut s = 0.0f32;
            for (a, b) in q.iter().zip(page.key_row(t)) {
                s += a * b;
            }
            acc.update(s * scale, page.value_row(t));
            stats.tokens_visited += 1;
        }
    }
    (acc.finish(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::masked_attention_reference;
    use lserve_kvcache::{PagingConfig, StreamingWindow};
    use lserve_quant::KvPrecision;
    use lserve_tensor::{Matrix, SeededGaussian};

    fn fill_dense(pool: &mut PagePool, cache: &mut DenseHeadCache, k: &Matrix, v: &Matrix) {
        for t in 0..k.rows() {
            assert!(cache.append(pool, k.row(t), v.row(t)));
        }
    }

    #[test]
    fn full_history_decode_matches_reference() {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 64, 8);
        let mut cache = DenseHeadCache::new();
        let mut g = SeededGaussian::new(21);
        let k = g.matrix(19, 8, 1.0);
        let v = g.matrix(19, 8, 1.0);
        fill_dense(&mut pool, &mut cache, &k, &v);
        let q = g.matrix(1, 8, 1.0);
        let scale = 1.0 / (8f32).sqrt();
        let (got, stats) = decode_dense_head(&pool, &cache, q.row(0), scale, None);
        let want = masked_attention_reference(&q, &k, &v, scale, |_, _| true);
        for (a, b) in got.iter().zip(want.row(0)) {
            assert!((a - b).abs() < 1e-4);
        }
        assert_eq!(stats.pages_visited, 5);
        assert_eq!(stats.tokens_visited, 19);
    }

    #[test]
    fn selected_pages_restrict_attention() {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 64, 4);
        let mut cache = DenseHeadCache::new();
        let mut g = SeededGaussian::new(8);
        let k = g.matrix(16, 4, 1.0);
        let v = g.matrix(16, 4, 1.0);
        fill_dense(&mut pool, &mut cache, &k, &v);
        let q = g.matrix(1, 4, 1.0);
        let sel = [0usize, 3];
        let (got, stats) = decode_dense_head(&pool, &cache, q.row(0), 0.5, Some(&sel));
        let want = masked_attention_reference(&q, &k, &v, 0.5, |_, j| j / 4 == 0 || j / 4 == 3);
        for (a, b) in got.iter().zip(want.row(0)) {
            assert!((a - b).abs() < 1e-4);
        }
        assert_eq!(stats.pages_visited, 2);
        assert_eq!(stats.pages_total, 4);
    }

    #[test]
    fn selection_order_does_not_matter() {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 64, 4);
        let mut cache = DenseHeadCache::new();
        let mut g = SeededGaussian::new(13);
        let k = g.matrix(20, 4, 1.0);
        let v = g.matrix(20, 4, 1.0);
        fill_dense(&mut pool, &mut cache, &k, &v);
        let q: Vec<f32> = g.matrix(1, 4, 1.0).into_vec();
        let (a, _) = decode_dense_head(&pool, &cache, &q, 0.5, Some(&[0, 2, 4]));
        let (b, _) = decode_dense_head(&pool, &cache, &q, 0.5, Some(&[4, 0, 2]));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn streaming_decode_matches_lambda_mask() {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 64, 4);
        let mut cache = StreamingHeadCache::new(StreamingWindow::new(1, 2));
        let mut g = SeededGaussian::new(31);
        let n = 30;
        let k = g.matrix(n, 4, 1.0);
        let v = g.matrix(n, 4, 1.0);
        for t in 0..n {
            assert!(cache.append(&mut pool, k.row(t), v.row(t)));
        }
        let q = g.matrix(1, 4, 1.0);
        let (got, stats) = decode_streaming_head(&pool, &cache, q.row(0), 0.5);
        // Resident tokens: sink page [0,4) + the local pages the cache retained.
        let resident: Vec<usize> = cache
            .page_table(&pool)
            .iter()
            .flat_map(|&(start, id)| (start..start + pool.page(id).len()).collect::<Vec<_>>())
            .collect();
        let want = masked_attention_reference(&q, &k, &v, 0.5, |_, j| resident.contains(&j));
        for (a, b) in got.iter().zip(want.row(0)) {
            assert!((a - b).abs() < 1e-4);
        }
        assert!(stats.pages_visited <= 3);
        assert_eq!(stats.pages_total, pool.config().pages_for(n) as u64);
    }

    #[test]
    fn quantized_pages_close_to_fp_reference() {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Int8);
        let mut pool = PagePool::new(cfg, 64, 8);
        let mut cache = DenseHeadCache::new();
        let mut g = SeededGaussian::new(77);
        let k = g.matrix(24, 8, 1.0);
        let v = g.matrix(24, 8, 1.0);
        fill_dense(&mut pool, &mut cache, &k, &v);
        let q = g.matrix(1, 8, 1.0);
        let scale = 1.0 / (8f32).sqrt();
        let (got, _) = decode_dense_head(&pool, &cache, q.row(0), scale, None);
        let want = masked_attention_reference(&q, &k, &v, scale, |_, _| true);
        for (a, b) in got.iter().zip(want.row(0)) {
            assert!((a - b).abs() < 0.05, "int8 decode drifted: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "cold page")]
    fn decode_refuses_cold_pages() {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 8, 4);
        let mut cache = DenseHeadCache::new();
        for i in 0..6 {
            cache.append(&mut pool, &[i as f32; 4], &[0.0; 4]);
        }
        // Page 0 moves to the cold tier; attending it must trip the residency
        // precondition rather than silently reading host memory.
        pool.demote(cache.page_table()[0]).unwrap();
        let _ = decode_dense_head(&pool, &cache, &[1.0; 4], 0.5, Some(&[0]));
    }

    #[test]
    fn decode_skips_cold_pages_outside_selection() {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 8, 4);
        let mut cache = DenseHeadCache::new();
        let mut g = SeededGaussian::new(3);
        let k = g.matrix(10, 4, 1.0);
        let v = g.matrix(10, 4, 1.0);
        fill_dense(&mut pool, &mut cache, &k, &v);
        let q = g.matrix(1, 4, 1.0);
        let (want, _) = decode_dense_head(&pool, &cache, q.row(0), 0.5, Some(&[1, 2]));
        // A cold page that the selection does not visit is harmless.
        pool.demote(cache.page_table()[0]).unwrap();
        let (got, _) = decode_dense_head(&pool, &cache, q.row(0), 0.5, Some(&[1, 2]));
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_selection_panics() {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 8, 4);
        let mut cache = DenseHeadCache::new();
        cache.append(&mut pool, &[0.0; 4], &[0.0; 4]);
        let _ = decode_dense_head(&pool, &cache, &[0.0; 4], 1.0, Some(&[5]));
    }
}
