//! Sparsity-aware parallel execution of per-head attention shards.
//!
//! LServe's per-head sparsity makes attention work wildly non-uniform: a
//! streaming head touches a constant sink+local window while a dense head
//! touches its full (or selected) page set. Splitting a layer's attention at
//! *(sequence × KV-head)* granularity therefore produces shards whose costs
//! span orders of magnitude, and a naive round-robin over worker threads
//! leaves most of them idle behind the one that drew the long dense shards
//! (the observation S-HPLB makes for head-parallel sparse decoding).
//!
//! This module is the std-only worker pool the executor runs those shards on:
//!
//! * [`lpt_assign`] — Longest-Processing-Time-first assignment of shards to
//!   workers by their *estimated* cost (streaming ≈ resident window tokens,
//!   dense ≈ selected/resident page tokens from the selector), the classic
//!   `4/3`-approximate makespan heuristic.
//! * [`run_sharded`] — scoped worker threads (no `'static` bounds, no
//!   channels, no external deps) that drain their own LPT queue and then
//!   *steal* unstarted shards from other workers' queues, smallest-first, so a
//!   mispredicted straggler cannot serialize the phase.
//! * [`DecodeShard`] / [`run_decode_shard`] — the unit of decode work: one KV
//!   head's query group against its head cache, written into a caller-provided
//!   disjoint output slice.
//!
//! Every shard writes only its own preallocated output slice and reads only
//! shared immutable state (pool pages, caches, queries), so the result is
//! bit-identical for every thread count, assignment, and steal schedule; the
//! only synchronization is one uncontended claim per shard. Wall-clock
//! speedup needs physical cores, but the [`BalanceStats`] cost counters give a
//! deterministic model of the achievable parallelism either way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use lserve_kvcache::{HeadCache, PagePool};

use crate::decode::{decode_dense_head, decode_streaming_head, DecodeStats};

/// Measured and estimated balance of one parallel phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BalanceStats {
    /// Worker threads actually used (clamped to the shard count).
    pub workers: usize,
    /// Shards executed.
    pub shards: u64,
    /// Shards executed by a worker other than their LPT assignee.
    pub stolen: u64,
    /// Measured per-worker busy time in nanoseconds.
    pub busy_ns: Vec<u64>,
    /// Estimated cost assigned to each worker by [`lpt_assign`].
    pub assigned_cost: Vec<u64>,
}

impl BalanceStats {
    /// Total measured busy time across workers.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }

    /// Busiest worker's measured time — the phase's wall-clock lower bound.
    pub fn max_busy_ns(&self) -> u64 {
        self.busy_ns.iter().copied().max().unwrap_or(0)
    }

    /// Total estimated shard cost (the serial work the phase replaces).
    pub fn cost_total(&self) -> u64 {
        self.assigned_cost.iter().sum()
    }

    /// Largest per-worker estimated cost — the phase's modeled critical path.
    pub fn cost_critical(&self) -> u64 {
        self.assigned_cost.iter().copied().max().unwrap_or(0)
    }
}

/// Longest-Processing-Time-first assignment: shards sorted by descending cost
/// (ties broken by index, so the result is deterministic) are each given to
/// the currently least-loaded worker. Returns one index list per worker, each
/// in descending-cost order.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn lpt_assign(costs: &[u64], workers: usize) -> Vec<Vec<usize>> {
    assert!(workers > 0, "need at least one worker");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut load = vec![0u64; workers];
    for i in order {
        let w = (0..workers)
            .min_by_key(|&w| (load[w], w))
            .expect("workers > 0");
        load[w] += costs[i];
        queues[w].push(i);
    }
    queues
}

/// Runs `tasks` across up to `threads` scoped worker threads, LPT-balanced by
/// `costs`, with work stealing as the straggler fallback.
///
/// Each task is executed exactly once, by exactly one worker. Workers drain
/// their own queue in descending-cost order, then scan the other queues from
/// the *back* (smallest assigned shards first) and steal anything unstarted.
/// Claims go through one uncontended mutex per shard; the task bodies
/// themselves run lock-free on whatever disjoint state they own.
///
/// With `threads <= 1` (or a single task) everything runs serially on the
/// calling thread in task order — the reference path the parallel schedule
/// must match bit-for-bit.
///
/// # Panics
///
/// Panics if `costs.len() != tasks.len()`, or propagates a panic from `run`.
pub fn run_sharded<T: Send, F: Fn(&mut T) + Sync>(
    threads: usize,
    costs: &[u64],
    tasks: &mut [T],
    run: F,
) -> BalanceStats {
    assert_eq!(costs.len(), tasks.len(), "one cost per shard");
    let n = tasks.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        let t0 = Instant::now();
        for t in tasks.iter_mut() {
            run(t);
        }
        return BalanceStats {
            workers: 1,
            shards: n as u64,
            stolen: 0,
            busy_ns: vec![t0.elapsed().as_nanos() as u64],
            assigned_cost: vec![costs.iter().sum()],
        };
    }
    let queues = lpt_assign(costs, workers);
    let assigned_cost: Vec<u64> = queues
        .iter()
        .map(|q| q.iter().map(|&i| costs[i]).sum())
        .collect();
    // One claimable slot per shard: `take()` hands exclusive ownership of the
    // `&mut T` to whichever worker gets there first, so assignment and steal
    // races can never run a shard twice.
    let slots: Vec<Mutex<Option<&mut T>>> = tasks.iter_mut().map(|t| Mutex::new(Some(t))).collect();
    let stolen = AtomicU64::new(0);
    let mut busy_ns = vec![0u64; workers];
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let slots = &slots;
                let stolen = &stolen;
                let run = &run;
                s.spawn(move || {
                    let t0 = Instant::now();
                    for &i in &queues[w] {
                        let task = slots[i].lock().expect("shard slot poisoned").take();
                        if let Some(task) = task {
                            run(task);
                        }
                    }
                    // Straggler fallback: steal unstarted shards, smallest
                    // (back of the LPT queue) first, from the nearest victim.
                    for offset in 1..workers {
                        let victim = (w + offset) % workers;
                        for &i in queues[victim].iter().rev() {
                            let task = slots[i].lock().expect("shard slot poisoned").take();
                            if let Some(task) = task {
                                stolen.fetch_add(1, Ordering::Relaxed);
                                run(task);
                            }
                        }
                    }
                    t0.elapsed().as_nanos() as u64
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            busy_ns[w] = h.join().expect("attention worker panicked");
        }
    });
    BalanceStats {
        workers,
        shards: n as u64,
        stolen: stolen.into_inner(),
        busy_ns,
        assigned_cost,
    }
}

/// Balance of one placed parallel phase: per-device modeled load on top of
/// the flattened per-worker [`BalanceStats`].
///
/// Produced by [`run_placed`], which executes shards against an explicit
/// shard → device map instead of one anonymous worker pool. Devices are
/// simulated — they all run on the same host threads — so outputs are
/// bit-identical to [`run_sharded`]; only the modeled accounting (which
/// device a shard's cost lands on, which worker lane it traces into) changes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlacedBalance {
    /// Simulated devices the phase was placed onto.
    pub devices: usize,
    /// Modeled shard cost landed on each device.
    pub device_cost: Vec<u64>,
    /// Worker threads used by each device (0 for devices with no shards).
    pub device_workers: Vec<usize>,
    /// Flattened worker-level stats, device-major: device 0's workers first.
    pub stats: BalanceStats,
}

impl PlacedBalance {
    /// Busiest device's modeled cost — the phase's device-level critical path
    /// (devices run concurrently in the model).
    pub fn device_cost_critical(&self) -> u64 {
        self.device_cost.iter().copied().max().unwrap_or(0)
    }

    /// Total modeled cost across devices.
    pub fn device_cost_total(&self) -> u64 {
        self.device_cost.iter().sum()
    }

    /// Max-over-mean device load — 1.0 is perfect balance, `devices` is
    /// everything on one device; 1.0 when there is no load.
    pub fn device_imbalance(&self) -> f64 {
        let total = self.device_cost_total();
        if total == 0 || self.devices == 0 {
            return 1.0;
        }
        self.device_cost_critical() as f64 * self.devices as f64 / total as f64
    }
}

/// Runs `tasks` against an explicit placement: shard `i` executes on
/// simulated device `device_of[i]`, each device draining its own LPT-balanced
/// queues with up to `threads_per_device` scoped workers and stealing only
/// within its device (a worker never executes another device's shard, so the
/// modeled per-device load is exact).
///
/// Devices are a modeling construct: all workers are host threads, every task
/// still runs exactly once into caller-owned disjoint state, and the result
/// is bit-identical to [`run_sharded`] for every device count, placement, and
/// steal schedule.
///
/// # Panics
///
/// Panics if `devices` is zero, if `costs`/`device_of`/`tasks` lengths
/// disagree, or if any `device_of` entry is out of range.
pub fn run_placed<T: Send, F: Fn(&mut T) + Sync>(
    threads_per_device: usize,
    devices: usize,
    device_of: &[usize],
    costs: &[u64],
    tasks: &mut [T],
    run: F,
) -> PlacedBalance {
    assert!(devices > 0, "need at least one device");
    assert_eq!(costs.len(), tasks.len(), "one cost per shard");
    assert_eq!(device_of.len(), tasks.len(), "one device per shard");
    assert!(
        device_of.iter().all(|&d| d < devices),
        "shard placed on a device outside the topology"
    );
    let n = tasks.len();
    if devices == 1 {
        let stats = run_sharded(threads_per_device, costs, tasks, run);
        return PlacedBalance {
            devices: 1,
            device_cost: vec![stats.cost_total()],
            device_workers: vec![stats.workers],
            stats,
        };
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); devices];
    for (i, &d) in device_of.iter().enumerate() {
        groups[d].push(i);
    }
    let device_cost: Vec<u64> = groups
        .iter()
        .map(|g| g.iter().map(|&i| costs[i]).sum())
        .collect();
    // Per-device LPT queues over global shard indices, then one flat worker
    // list (device-major) so a single scoped spawn covers the whole mesh.
    let mut device_workers = vec![0usize; devices];
    let mut worker_device: Vec<usize> = Vec::new();
    let mut queues: Vec<Vec<usize>> = Vec::new();
    let mut device_first_worker = vec![0usize; devices];
    for (d, group) in groups.iter().enumerate() {
        device_first_worker[d] = queues.len();
        if group.is_empty() {
            continue;
        }
        let workers = threads_per_device.max(1).min(group.len());
        device_workers[d] = workers;
        let local_costs: Vec<u64> = group.iter().map(|&i| costs[i]).collect();
        for queue in lpt_assign(&local_costs, workers) {
            queues.push(queue.into_iter().map(|local| group[local]).collect());
            worker_device.push(d);
        }
    }
    let total_workers = queues.len();
    let assigned_cost: Vec<u64> = queues
        .iter()
        .map(|q| q.iter().map(|&i| costs[i]).sum())
        .collect();
    let slots: Vec<Mutex<Option<&mut T>>> = tasks.iter_mut().map(|t| Mutex::new(Some(t))).collect();
    let stolen = AtomicU64::new(0);
    let mut busy_ns = vec![0u64; total_workers];
    thread::scope(|s| {
        let handles: Vec<_> = (0..total_workers)
            .map(|w| {
                let queues = &queues;
                let slots = &slots;
                let stolen = &stolen;
                let run = &run;
                let d = worker_device[w];
                let dev_base = device_first_worker[d];
                let dev_workers = device_workers[d];
                s.spawn(move || {
                    let t0 = Instant::now();
                    for &i in &queues[w] {
                        let task = slots[i].lock().expect("shard slot poisoned").take();
                        if let Some(task) = task {
                            run(task);
                        }
                    }
                    // Steal within this device only: cross-device steals would
                    // falsify the modeled per-device load.
                    let local = w - dev_base;
                    for offset in 1..dev_workers {
                        let victim = dev_base + (local + offset) % dev_workers;
                        for &i in queues[victim].iter().rev() {
                            let task = slots[i].lock().expect("shard slot poisoned").take();
                            if let Some(task) = task {
                                stolen.fetch_add(1, Ordering::Relaxed);
                                run(task);
                            }
                        }
                    }
                    t0.elapsed().as_nanos() as u64
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            busy_ns[w] = h.join().expect("attention worker panicked");
        }
    });
    PlacedBalance {
        devices,
        device_cost,
        device_workers,
        stats: BalanceStats {
            workers: total_workers,
            shards: n as u64,
            stolen: stolen.into_inner(),
            busy_ns,
            assigned_cost,
        },
    }
}

/// One *(sequence × KV-head)* unit of decode attention: the KV head's query
/// group against its cache, into a caller-owned disjoint output slice.
///
/// `queries` and `out` both hold `group_size * head_dim` values (the query
/// heads of one GQA group are contiguous, so the output region is too).
#[derive(Debug)]
pub struct DecodeShard<'a> {
    /// The KV head's cache (dense or streaming).
    pub head: &'a HeadCache,
    /// Query rows of every query head in this KV head's group, concatenated.
    pub queries: &'a [f32],
    /// Selected physical-page indices for a dense head (`None` = full history;
    /// ignored for streaming heads, whose page table *is* the selection).
    pub selection: Option<&'a [usize]>,
    /// Per-head feature dimension `D`.
    pub head_dim: usize,
    /// Logit scale `1/sqrt(D)`.
    pub scale: f32,
    /// Preallocated output slice, same length as `queries`.
    pub out: &'a mut [f32],
    /// Work counters accumulated over the group, dense-head portion.
    pub dense: DecodeStats,
    /// Work counters accumulated over the group, streaming-head portion.
    pub streaming: DecodeStats,
}

/// Executes one decode shard: every query head of the group runs the matching
/// single-head kernel, and the results land in the shard's output slice.
///
/// # Panics
///
/// Panics if `queries`/`out` lengths disagree or are not a multiple of
/// `head_dim`, or on the underlying kernels' shape checks.
pub fn run_decode_shard(pool: &PagePool, shard: &mut DecodeShard<'_>) {
    let d = shard.head_dim;
    assert_eq!(
        shard.out.len(),
        shard.queries.len(),
        "shard output mismatch"
    );
    assert_eq!(shard.queries.len() % d, 0, "ragged query group");
    let group = shard.queries.len() / d;
    for g in 0..group {
        let q = &shard.queries[g * d..(g + 1) * d];
        let oh = match shard.head {
            HeadCache::Dense(c) => {
                let (oh, stats) = decode_dense_head(pool, c, q, shard.scale, shard.selection);
                shard.dense.accumulate(stats);
                oh
            }
            HeadCache::Streaming(c) => {
                let (oh, stats) = decode_streaming_head(pool, c, q, shard.scale);
                shard.streaming.accumulate(stats);
                oh
            }
        };
        shard.out[g * d..(g + 1) * d].copy_from_slice(&oh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lpt_balances_known_loads() {
        // Loads {7,6,5,4,3} over 2 workers: LPT yields a 14/11 split (within
        // its 4/3 bound of the optimal 13/12), far better than the 16/9 a
        // naive in-order halving would produce.
        let costs = [5, 3, 7, 6, 4];
        let queues = lpt_assign(&costs, 2);
        let loads: Vec<u64> = queues
            .iter()
            .map(|q| q.iter().map(|&i| costs[i]).sum())
            .collect();
        assert_eq!(loads.iter().sum::<u64>(), 25);
        assert_eq!(*loads.iter().max().unwrap(), 14);
    }

    #[test]
    fn lpt_is_deterministic_under_ties() {
        let costs = [4u64, 4, 4, 4];
        assert_eq!(lpt_assign(&costs, 2), lpt_assign(&costs, 2));
        assert_eq!(lpt_assign(&costs, 2), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn run_sharded_executes_every_task_once() {
        for threads in [1, 2, 3, 8] {
            let mut tasks: Vec<u32> = vec![0; 37];
            let costs: Vec<u64> = (0..37).map(|i| (i % 5 + 1) as u64).collect();
            let executions = AtomicUsize::new(0);
            let stats = run_sharded(threads, &costs, &mut tasks, |t| {
                *t += 1;
                executions.fetch_add(1, Ordering::Relaxed);
            });
            assert!(tasks.iter().all(|&t| t == 1), "threads {threads}");
            assert_eq!(executions.into_inner(), 37);
            assert_eq!(stats.shards, 37);
            assert!(stats.workers <= threads.max(1));
            assert_eq!(stats.busy_ns.len(), stats.workers);
            assert_eq!(stats.cost_total(), costs.iter().sum::<u64>());
            assert!(stats.cost_critical() <= stats.cost_total());
        }
    }

    #[test]
    fn worker_count_clamps_to_shard_count() {
        let mut tasks = vec![0u8; 2];
        let stats = run_sharded(16, &[1, 1], &mut tasks, |t| *t = 1);
        assert_eq!(stats.workers, 2);
        assert_eq!(tasks, vec![1, 1]);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let mut tasks: Vec<u8> = Vec::new();
        let stats = run_sharded(4, &[], &mut tasks, |_| {});
        assert_eq!(stats.shards, 0);
    }

    #[test]
    fn run_placed_executes_every_task_once_on_its_device() {
        for (devices, threads) in [(1, 1), (2, 1), (2, 3), (4, 2)] {
            let n = 23;
            let mut tasks: Vec<u32> = vec![0; n];
            let costs: Vec<u64> = (0..n).map(|i| (i % 7 + 1) as u64).collect();
            let device_of: Vec<usize> = (0..n).map(|i| (i * i) % devices).collect();
            let executions = AtomicUsize::new(0);
            let placed = run_placed(threads, devices, &device_of, &costs, &mut tasks, |t| {
                *t += 1;
                executions.fetch_add(1, Ordering::Relaxed);
            });
            assert!(tasks.iter().all(|&t| t == 1), "devices {devices}");
            assert_eq!(executions.into_inner(), n);
            assert_eq!(placed.devices, devices);
            assert_eq!(placed.stats.shards, n as u64);
            assert_eq!(placed.device_cost_total(), costs.iter().sum::<u64>());
            // Per-device load is exactly the sum of the shards placed there.
            for d in 0..devices {
                let want: u64 = (0..n)
                    .filter(|&i| device_of[i] == d)
                    .map(|i| costs[i])
                    .sum();
                assert_eq!(placed.device_cost[d], want);
            }
        }
    }

    #[test]
    fn run_placed_matches_run_sharded_on_one_device() {
        let mut a: Vec<u32> = vec![0; 11];
        let mut b: Vec<u32> = vec![0; 11];
        let costs: Vec<u64> = (0..11).map(|i| i as u64).collect();
        let sharded = run_sharded(2, &costs, &mut a, |t| *t += 1);
        let placed = run_placed(2, 1, &[0; 11], &costs, &mut b, |t| *t += 1);
        assert_eq!(a, b);
        assert_eq!(placed.stats.assigned_cost, sharded.assigned_cost);
        assert_eq!(placed.device_imbalance(), 1.0);
    }

    #[test]
    fn run_placed_imbalance_reflects_skewed_placement() {
        // Everything on device 0 of 2: imbalance is exactly 2.0.
        let mut tasks = vec![0u8; 6];
        let placed = run_placed(1, 2, &[0; 6], &[3; 6], &mut tasks, |t| *t = 1);
        assert_eq!(placed.device_cost, vec![18, 0]);
        assert_eq!(placed.device_workers, vec![1, 0]);
        assert_eq!(placed.device_imbalance(), 2.0);
        assert!(tasks.iter().all(|&t| t == 1));
    }

    #[test]
    fn run_placed_empty_devices_and_empty_tasks_are_fine() {
        let mut tasks: Vec<u8> = Vec::new();
        let placed = run_placed(4, 3, &[], &[], &mut tasks, |_| {});
        assert_eq!(placed.stats.shards, 0);
        assert_eq!(placed.device_cost, vec![0, 0, 0]);
        assert_eq!(placed.device_imbalance(), 1.0);
    }
}
