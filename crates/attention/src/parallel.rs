//! Sparsity-aware parallel execution of per-head attention shards.
//!
//! LServe's per-head sparsity makes attention work wildly non-uniform: a
//! streaming head touches a constant sink+local window while a dense head
//! touches its full (or selected) page set. Splitting a layer's attention at
//! *(sequence × KV-head)* granularity therefore produces shards whose costs
//! span orders of magnitude, and a naive round-robin over worker threads
//! leaves most of them idle behind the one that drew the long dense shards
//! (the observation S-HPLB makes for head-parallel sparse decoding).
//!
//! This module is the std-only worker pool the executor runs those shards on:
//!
//! * [`lpt_assign`] — Longest-Processing-Time-first assignment of shards to
//!   workers by their *estimated* cost (streaming ≈ resident window tokens,
//!   dense ≈ selected/resident page tokens from the selector), the classic
//!   `4/3`-approximate makespan heuristic.
//! * [`run_sharded`] — scoped worker threads (no `'static` bounds, no
//!   channels, no external deps) that drain their own LPT queue and then
//!   *steal* unstarted shards from other workers' queues, smallest-first, so a
//!   mispredicted straggler cannot serialize the phase.
//! * [`DecodeShard`] / [`run_decode_shard`] — the unit of decode work: one KV
//!   head's query group against its head cache, written into a caller-provided
//!   disjoint output slice.
//!
//! Every shard writes only its own preallocated output slice and reads only
//! shared immutable state (pool pages, caches, queries), so the result is
//! bit-identical for every thread count, assignment, and steal schedule; the
//! only synchronization is one uncontended claim per shard. Wall-clock
//! speedup needs physical cores, but the [`BalanceStats`] cost counters give a
//! deterministic model of the achievable parallelism either way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use lserve_kvcache::{HeadCache, PagePool};

use crate::decode::{decode_dense_head, decode_streaming_head, DecodeStats};

/// Measured and estimated balance of one parallel phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BalanceStats {
    /// Worker threads actually used (clamped to the shard count).
    pub workers: usize,
    /// Shards executed.
    pub shards: u64,
    /// Shards executed by a worker other than their LPT assignee.
    pub stolen: u64,
    /// Measured per-worker busy time in nanoseconds.
    pub busy_ns: Vec<u64>,
    /// Estimated cost assigned to each worker by [`lpt_assign`].
    pub assigned_cost: Vec<u64>,
}

impl BalanceStats {
    /// Total measured busy time across workers.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }

    /// Busiest worker's measured time — the phase's wall-clock lower bound.
    pub fn max_busy_ns(&self) -> u64 {
        self.busy_ns.iter().copied().max().unwrap_or(0)
    }

    /// Total estimated shard cost (the serial work the phase replaces).
    pub fn cost_total(&self) -> u64 {
        self.assigned_cost.iter().sum()
    }

    /// Largest per-worker estimated cost — the phase's modeled critical path.
    pub fn cost_critical(&self) -> u64 {
        self.assigned_cost.iter().copied().max().unwrap_or(0)
    }
}

/// Longest-Processing-Time-first assignment: shards sorted by descending cost
/// (ties broken by index, so the result is deterministic) are each given to
/// the currently least-loaded worker. Returns one index list per worker, each
/// in descending-cost order.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn lpt_assign(costs: &[u64], workers: usize) -> Vec<Vec<usize>> {
    assert!(workers > 0, "need at least one worker");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut load = vec![0u64; workers];
    for i in order {
        let w = (0..workers)
            .min_by_key(|&w| (load[w], w))
            .expect("workers > 0");
        load[w] += costs[i];
        queues[w].push(i);
    }
    queues
}

/// Runs `tasks` across up to `threads` scoped worker threads, LPT-balanced by
/// `costs`, with work stealing as the straggler fallback.
///
/// Each task is executed exactly once, by exactly one worker. Workers drain
/// their own queue in descending-cost order, then scan the other queues from
/// the *back* (smallest assigned shards first) and steal anything unstarted.
/// Claims go through one uncontended mutex per shard; the task bodies
/// themselves run lock-free on whatever disjoint state they own.
///
/// With `threads <= 1` (or a single task) everything runs serially on the
/// calling thread in task order — the reference path the parallel schedule
/// must match bit-for-bit.
///
/// # Panics
///
/// Panics if `costs.len() != tasks.len()`, or propagates a panic from `run`.
pub fn run_sharded<T: Send, F: Fn(&mut T) + Sync>(
    threads: usize,
    costs: &[u64],
    tasks: &mut [T],
    run: F,
) -> BalanceStats {
    assert_eq!(costs.len(), tasks.len(), "one cost per shard");
    let n = tasks.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        let t0 = Instant::now();
        for t in tasks.iter_mut() {
            run(t);
        }
        return BalanceStats {
            workers: 1,
            shards: n as u64,
            stolen: 0,
            busy_ns: vec![t0.elapsed().as_nanos() as u64],
            assigned_cost: vec![costs.iter().sum()],
        };
    }
    let queues = lpt_assign(costs, workers);
    let assigned_cost: Vec<u64> = queues
        .iter()
        .map(|q| q.iter().map(|&i| costs[i]).sum())
        .collect();
    // One claimable slot per shard: `take()` hands exclusive ownership of the
    // `&mut T` to whichever worker gets there first, so assignment and steal
    // races can never run a shard twice.
    let slots: Vec<Mutex<Option<&mut T>>> = tasks.iter_mut().map(|t| Mutex::new(Some(t))).collect();
    let stolen = AtomicU64::new(0);
    let mut busy_ns = vec![0u64; workers];
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let slots = &slots;
                let stolen = &stolen;
                let run = &run;
                s.spawn(move || {
                    let t0 = Instant::now();
                    for &i in &queues[w] {
                        let task = slots[i].lock().expect("shard slot poisoned").take();
                        if let Some(task) = task {
                            run(task);
                        }
                    }
                    // Straggler fallback: steal unstarted shards, smallest
                    // (back of the LPT queue) first, from the nearest victim.
                    for offset in 1..workers {
                        let victim = (w + offset) % workers;
                        for &i in queues[victim].iter().rev() {
                            let task = slots[i].lock().expect("shard slot poisoned").take();
                            if let Some(task) = task {
                                stolen.fetch_add(1, Ordering::Relaxed);
                                run(task);
                            }
                        }
                    }
                    t0.elapsed().as_nanos() as u64
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            busy_ns[w] = h.join().expect("attention worker panicked");
        }
    });
    BalanceStats {
        workers,
        shards: n as u64,
        stolen: stolen.into_inner(),
        busy_ns,
        assigned_cost,
    }
}

/// One *(sequence × KV-head)* unit of decode attention: the KV head's query
/// group against its cache, into a caller-owned disjoint output slice.
///
/// `queries` and `out` both hold `group_size * head_dim` values (the query
/// heads of one GQA group are contiguous, so the output region is too).
#[derive(Debug)]
pub struct DecodeShard<'a> {
    /// The KV head's cache (dense or streaming).
    pub head: &'a HeadCache,
    /// Query rows of every query head in this KV head's group, concatenated.
    pub queries: &'a [f32],
    /// Selected physical-page indices for a dense head (`None` = full history;
    /// ignored for streaming heads, whose page table *is* the selection).
    pub selection: Option<&'a [usize]>,
    /// Per-head feature dimension `D`.
    pub head_dim: usize,
    /// Logit scale `1/sqrt(D)`.
    pub scale: f32,
    /// Preallocated output slice, same length as `queries`.
    pub out: &'a mut [f32],
    /// Work counters accumulated over the group, dense-head portion.
    pub dense: DecodeStats,
    /// Work counters accumulated over the group, streaming-head portion.
    pub streaming: DecodeStats,
}

/// Executes one decode shard: every query head of the group runs the matching
/// single-head kernel, and the results land in the shard's output slice.
///
/// # Panics
///
/// Panics if `queries`/`out` lengths disagree or are not a multiple of
/// `head_dim`, or on the underlying kernels' shape checks.
pub fn run_decode_shard(pool: &PagePool, shard: &mut DecodeShard<'_>) {
    let d = shard.head_dim;
    assert_eq!(
        shard.out.len(),
        shard.queries.len(),
        "shard output mismatch"
    );
    assert_eq!(shard.queries.len() % d, 0, "ragged query group");
    let group = shard.queries.len() / d;
    for g in 0..group {
        let q = &shard.queries[g * d..(g + 1) * d];
        let oh = match shard.head {
            HeadCache::Dense(c) => {
                let (oh, stats) = decode_dense_head(pool, c, q, shard.scale, shard.selection);
                shard.dense.accumulate(stats);
                oh
            }
            HeadCache::Streaming(c) => {
                let (oh, stats) = decode_streaming_head(pool, c, q, shard.scale);
                shard.streaming.accumulate(stats);
                oh
            }
        };
        shard.out[g * d..(g + 1) * d].copy_from_slice(&oh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lpt_balances_known_loads() {
        // Loads {7,6,5,4,3} over 2 workers: LPT yields a 14/11 split (within
        // its 4/3 bound of the optimal 13/12), far better than the 16/9 a
        // naive in-order halving would produce.
        let costs = [5, 3, 7, 6, 4];
        let queues = lpt_assign(&costs, 2);
        let loads: Vec<u64> = queues
            .iter()
            .map(|q| q.iter().map(|&i| costs[i]).sum())
            .collect();
        assert_eq!(loads.iter().sum::<u64>(), 25);
        assert_eq!(*loads.iter().max().unwrap(), 14);
    }

    #[test]
    fn lpt_is_deterministic_under_ties() {
        let costs = [4u64, 4, 4, 4];
        assert_eq!(lpt_assign(&costs, 2), lpt_assign(&costs, 2));
        assert_eq!(lpt_assign(&costs, 2), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn run_sharded_executes_every_task_once() {
        for threads in [1, 2, 3, 8] {
            let mut tasks: Vec<u32> = vec![0; 37];
            let costs: Vec<u64> = (0..37).map(|i| (i % 5 + 1) as u64).collect();
            let executions = AtomicUsize::new(0);
            let stats = run_sharded(threads, &costs, &mut tasks, |t| {
                *t += 1;
                executions.fetch_add(1, Ordering::Relaxed);
            });
            assert!(tasks.iter().all(|&t| t == 1), "threads {threads}");
            assert_eq!(executions.into_inner(), 37);
            assert_eq!(stats.shards, 37);
            assert!(stats.workers <= threads.max(1));
            assert_eq!(stats.busy_ns.len(), stats.workers);
            assert_eq!(stats.cost_total(), costs.iter().sum::<u64>());
            assert!(stats.cost_critical() <= stats.cost_total());
        }
    }

    #[test]
    fn worker_count_clamps_to_shard_count() {
        let mut tasks = vec![0u8; 2];
        let stats = run_sharded(16, &[1, 1], &mut tasks, |t| *t = 1);
        assert_eq!(stats.workers, 2);
        assert_eq!(tasks, vec![1, 1]);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let mut tasks: Vec<u8> = Vec::new();
        let stats = run_sharded(4, &[], &mut tasks, |_| {});
        assert_eq!(stats.shards, 0);
    }
}
