//! The §3.4 iterator abstraction: block patterns enumerate exactly the tiles to
//! compute, replacing per-iteration branching by offset arithmetic.
//!
//! A [`BlockPattern`] answers, for query tile `qt` and KV block `kb`, whether the
//! `TQ × TK` tile is skipped, fully computed, or is the causal diagonal tile (the
//! only tile that applies a per-element mask — "aside from the most recent KV block,
//! each block is either fully computed or entirely skipped", §2.2).

/// What the kernel does with one `TQ × TK` tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockDecision {
    /// Tile contributes nothing; the iterator never yields it.
    Skip,
    /// Every (query, key) pair in the tile is valid; computed without masking.
    Full,
    /// Tile straddles the causal diagonal; computed with the elementwise causal test.
    Causal,
}

/// A structured sparsity pattern over `TQ × TK` tiles.
///
/// Implementations must be *causally sound*: they may only return [`BlockDecision::Full`]
/// for tiles whose keys all precede all queries of the tile, and must return
/// [`BlockDecision::Skip`] for tiles entirely in the future.
pub trait BlockPattern {
    /// Decision for query tile `qt` (tokens `[qt*tq, (qt+1)*tq)`) and KV block `kb`
    /// (tokens `[kb*tk, (kb+1)*tk)`), given tile sizes and total sequence length.
    fn decide(&self, qt: usize, kb: usize, tq: usize, tk: usize, seq_len: usize) -> BlockDecision;

    /// Iterator over the visited (non-skipped) KV blocks of query tile `qt`.
    ///
    /// This is the "iterator-based abstraction" of §3.4: kernels loop only over the
    /// blocks this yields.
    fn blocks_for_tile(
        &self,
        qt: usize,
        tq: usize,
        tk: usize,
        seq_len: usize,
    ) -> Vec<(usize, BlockDecision)> {
        let num_kb = seq_len.div_ceil(tk);
        (0..num_kb)
            .filter_map(|kb| match self.decide(qt, kb, tq, tk, seq_len) {
                BlockDecision::Skip => None,
                d => Some((kb, d)),
            })
            .collect()
    }

    /// Counts `(visited, total_causal)` tiles over a whole prefill of `seq_len`
    /// tokens; `total_causal` is the dense-causal tile count, the denominator of the
    /// block sparsity ratio `r` (§3.1).
    fn tile_counts(&self, tq: usize, tk: usize, seq_len: usize) -> (u64, u64) {
        let num_qt = seq_len.div_ceil(tq);
        let dense = DensePattern;
        let mut visited = 0u64;
        let mut total = 0u64;
        for qt in 0..num_qt {
            for kb in 0..seq_len.div_ceil(tk) {
                if dense.decide(qt, kb, tq, tk, seq_len) != BlockDecision::Skip {
                    total += 1;
                }
                if self.decide(qt, kb, tq, tk, seq_len) != BlockDecision::Skip {
                    visited += 1;
                }
            }
        }
        (visited, total)
    }
}

/// Causal decision ignoring any sparsity: the base geometry every pattern composes
/// with.
fn causal_decide(qt: usize, kb: usize, tq: usize, tk: usize, seq_len: usize) -> BlockDecision {
    let q_start = qt * tq;
    let q_end = ((qt + 1) * tq).min(seq_len); // exclusive
    let k_start = kb * tk;
    let k_end = ((kb + 1) * tk).min(seq_len); // exclusive
    if k_start >= q_end {
        // Every key is strictly in the future of every query.
        BlockDecision::Skip
    } else if k_end <= q_start + 1 {
        // Every key index <= every query index (k_end-1 <= q_start).
        BlockDecision::Full
    } else {
        BlockDecision::Causal
    }
}

/// Standard dense causal attention (Figure 4(a)): every past tile visited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DensePattern;

impl BlockPattern for DensePattern {
    fn decide(&self, qt: usize, kb: usize, tq: usize, tk: usize, seq_len: usize) -> BlockDecision {
        causal_decide(qt, kb, tq, tk, seq_len)
    }
}

/// Streaming (Λ-shaped) attention at block granularity (Figure 4(c)): each query tile
/// attends the first `sink_blocks` KV blocks and the `local_blocks` most recent
/// blocks up to the diagonal.
///
/// # Example
///
/// ```
/// use lserve_attention::{BlockDecision, BlockPattern, StreamingPattern};
///
/// let p = StreamingPattern::new(1, 2);
/// // Query tile 5 with unit tiles: sink block 0, locals 4 and 5; 1..=3 skipped.
/// assert_eq!(p.decide(5, 0, 16, 16, 1024), BlockDecision::Full);
/// assert_eq!(p.decide(5, 2, 16, 16, 1024), BlockDecision::Skip);
/// assert_eq!(p.decide(5, 4, 16, 16, 1024), BlockDecision::Full);
/// assert_eq!(p.decide(5, 5, 16, 16, 1024), BlockDecision::Causal);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingPattern {
    sink_blocks: usize,
    local_blocks: usize,
}

impl StreamingPattern {
    /// Creates the pattern.
    ///
    /// # Panics
    ///
    /// Panics if `local_blocks == 0` (the diagonal block must always be attended).
    pub fn new(sink_blocks: usize, local_blocks: usize) -> Self {
        assert!(local_blocks > 0, "streaming pattern needs >= 1 local block");
        Self {
            sink_blocks,
            local_blocks,
        }
    }

    /// Number of sink blocks.
    pub fn sink_blocks(&self) -> usize {
        self.sink_blocks
    }

    /// Number of local blocks (including the diagonal one).
    pub fn local_blocks(&self) -> usize {
        self.local_blocks
    }
}

impl BlockPattern for StreamingPattern {
    fn decide(&self, qt: usize, kb: usize, tq: usize, tk: usize, seq_len: usize) -> BlockDecision {
        assert_eq!(tq, tk, "StreamingPattern requires square tiles (TQ == TK)");
        let causal = causal_decide(qt, kb, tq, tk, seq_len);
        if causal == BlockDecision::Skip {
            return BlockDecision::Skip;
        }
        let is_sink = kb < self.sink_blocks;
        // With square tiles the diagonal block of tile qt is kb == qt; local window
        // covers (qt - local_blocks, qt].
        let is_local = kb + self.local_blocks > qt && kb <= qt;
        if is_sink || is_local {
            causal
        } else {
            BlockDecision::Skip
        }
    }
}

/// Arbitrary per-tile mask (MInference-style dynamic prefill sparsity): tile
/// `(qt, kb)` is visited iff `mask[qt][kb]` — always intersected with causality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskPattern {
    num_q_tiles: usize,
    num_k_blocks: usize,
    mask: Vec<bool>,
}

impl MaskPattern {
    /// Creates a mask of `num_q_tiles x num_k_blocks`, initially all-skipped.
    pub fn new(num_q_tiles: usize, num_k_blocks: usize) -> Self {
        Self {
            num_q_tiles,
            num_k_blocks,
            mask: vec![false; num_q_tiles * num_k_blocks],
        }
    }

    /// Marks tile `(qt, kb)` visited.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, qt: usize, kb: usize) {
        assert!(
            qt < self.num_q_tiles && kb < self.num_k_blocks,
            "mask index out of bounds"
        );
        self.mask[qt * self.num_k_blocks + kb] = true;
    }

    /// Whether tile `(qt, kb)` is marked (out-of-range queries treated as unmarked).
    pub fn get(&self, qt: usize, kb: usize) -> bool {
        if qt >= self.num_q_tiles || kb >= self.num_k_blocks {
            return false;
        }
        self.mask[qt * self.num_k_blocks + kb]
    }

    /// Builds the mask that keeps the diagonal plus `keep_per_row` random causally
    /// valid blocks per query tile — a stand-in for MInference's offline pattern
    /// search, used by benches.
    pub fn random_causal(
        num_q_tiles: usize,
        num_k_blocks: usize,
        keep_per_row: usize,
        seed: u64,
    ) -> Self {
        // Simple deterministic LCG so this crate needs no rand dependency.
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = move |bound: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound.max(1)
        };
        let mut m = Self::new(num_q_tiles, num_k_blocks);
        for qt in 0..num_q_tiles {
            m.set(qt, qt.min(num_k_blocks - 1)); // diagonal always kept
            for _ in 0..keep_per_row {
                let kb = next(qt + 1).min(num_k_blocks - 1);
                m.set(qt, kb);
            }
        }
        m
    }
}

impl BlockPattern for MaskPattern {
    fn decide(&self, qt: usize, kb: usize, tq: usize, tk: usize, seq_len: usize) -> BlockDecision {
        let causal = causal_decide(qt, kb, tq, tk, seq_len);
        if causal == BlockDecision::Skip || !self.get(qt, kb) {
            BlockDecision::Skip
        } else {
            causal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_counts_are_triangular() {
        // 4 tiles of 16 over 64 tokens: visited = 4+3+2+1 = 10 (Figure 4(a) analogue).
        let (v, t) = DensePattern.tile_counts(16, 16, 64);
        assert_eq!(v, 10);
        assert_eq!(t, 10);
    }

    #[test]
    fn dense_diagonal_is_causal_past_is_full() {
        assert_eq!(DensePattern.decide(2, 2, 16, 16, 64), BlockDecision::Causal);
        assert_eq!(DensePattern.decide(2, 1, 16, 16, 64), BlockDecision::Full);
        assert_eq!(DensePattern.decide(2, 3, 16, 16, 64), BlockDecision::Skip);
    }

    #[test]
    fn figure4b_sparsity_ratio() {
        // Figure 4(b): 10 of 21 blocks non-empty → speedup 21/10 = 2.1x. Build that
        // exact situation: 6 tiles, keep 10 via a mask, verify the ratio helper.
        let seq = 6 * 8;
        let mut m = MaskPattern::new(6, 6);
        // Keep diagonal (6) plus 4 extra past blocks = 10 visited.
        for qt in 0..6 {
            m.set(qt, qt);
        }
        m.set(3, 0);
        m.set(4, 1);
        m.set(5, 0);
        m.set(5, 2);
        let (v, t) = m.tile_counts(8, 8, seq);
        assert_eq!(t, 21);
        assert_eq!(v, 10);
        let speedup = t as f64 / v as f64;
        assert!((speedup - 2.1).abs() < 1e-9);
    }

    #[test]
    fn streaming_keeps_constant_blocks_per_tile() {
        let p = StreamingPattern::new(1, 2);
        for qt in 3..10 {
            let blocks = p.blocks_for_tile(qt, 16, 16, 16 * 32);
            // one sink + two local
            assert_eq!(blocks.len(), 3, "tile {qt}");
        }
    }

    #[test]
    fn streaming_early_tiles_degenerate_to_dense() {
        let p = StreamingPattern::new(1, 2);
        let d = DensePattern;
        for qt in 0..2 {
            for kb in 0..4 {
                assert_eq!(
                    p.decide(qt, kb, 16, 16, 512),
                    d.decide(qt, kb, 16, 16, 512),
                    "qt={qt} kb={kb}"
                );
            }
        }
    }

    #[test]
    fn streaming_linear_vs_dense_quadratic() {
        let p = StreamingPattern::new(1, 2);
        let (v, t) = p.tile_counts(16, 16, 16 * 100);
        assert!(v <= 3 * 100);
        assert_eq!(t, (100 * 101 / 2) as u64);
    }

    #[test]
    fn streaming_never_visits_future() {
        let p = StreamingPattern::new(2, 3);
        for qt in 0..20 {
            for (kb, _) in p.blocks_for_tile(qt, 8, 8, 8 * 20) {
                assert!(kb <= qt);
            }
        }
    }

    #[test]
    fn mask_intersects_causality() {
        let mut m = MaskPattern::new(4, 4);
        m.set(1, 3); // future of tile 1 → must stay skipped
        assert_eq!(m.decide(1, 3, 16, 16, 64), BlockDecision::Skip);
        m.set(3, 3);
        assert_eq!(m.decide(3, 3, 16, 16, 64), BlockDecision::Causal);
    }

    #[test]
    fn unset_mask_visits_nothing() {
        let m = MaskPattern::new(4, 4);
        let (v, _) = m.tile_counts(16, 16, 64);
        assert_eq!(v, 0);
    }

    #[test]
    fn random_causal_mask_keeps_diagonal() {
        let m = MaskPattern::random_causal(8, 8, 2, 42);
        for qt in 0..8 {
            assert_eq!(m.decide(qt, qt, 4, 4, 32), BlockDecision::Causal);
        }
    }

    #[test]
    fn ragged_tail_tile_decisions() {
        // 40 tokens with 16-token tiles: last tile covers 32..40.
        assert_eq!(DensePattern.decide(2, 2, 16, 16, 40), BlockDecision::Causal);
        assert_eq!(DensePattern.decide(2, 1, 16, 16, 40), BlockDecision::Full);
        // Query tile 1 (16..32) vs kv block 2 (32..40): future → skip.
        assert_eq!(DensePattern.decide(1, 2, 16, 16, 40), BlockDecision::Skip);
    }

    #[test]
    #[should_panic(expected = "square tiles")]
    fn streaming_requires_square_tiles() {
        let _ = StreamingPattern::new(1, 1).decide(0, 0, 8, 16, 64);
    }
}
