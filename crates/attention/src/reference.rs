//! Naive reference attention implementations used as ground truth in tests.

use lserve_tensor::{softmax_in_place, Matrix};

/// Dense causal attention computed the naive way: full `QK^T`, explicit causal mask,
/// batch softmax, then `PV`. Quadratic memory; only for testing and tiny inputs.
///
/// `q`, `k`, `v` are `(N x D)` single-head matrices; `scale` is usually
/// `1/sqrt(D)`.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn causal_attention_reference(q: &Matrix, k: &Matrix, v: &Matrix, scale: f32) -> Matrix {
    let n = q.rows();
    assert_eq!(k.rows(), n, "K rows mismatch");
    assert_eq!(v.rows(), n, "V rows mismatch");
    assert_eq!(q.cols(), k.cols(), "Q/K dim mismatch");
    let mut scores = q.matmul_nt(k);
    scores.scale(scale);
    for i in 0..n {
        for j in (i + 1)..n {
            scores[(i, j)] = f32::NEG_INFINITY;
        }
    }
    softmax_in_place(&mut scores);
    scores.matmul(v)
}

/// Attention under an arbitrary token-level visibility mask:
/// `visible(i, j) == true` means query `i` may attend key `j`. Causality is *not*
/// implied; pass it inside the closure.
///
/// Used to cross-check block patterns: expanding a block pattern to token level and
/// feeding it here must match the block-sparse kernel exactly.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn masked_attention_reference<F>(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    scale: f32,
    visible: F,
) -> Matrix
where
    F: Fn(usize, usize) -> bool,
{
    let n = q.rows();
    let m = k.rows();
    assert_eq!(v.rows(), m, "K/V rows mismatch");
    assert_eq!(q.cols(), k.cols(), "Q/K dim mismatch");
    let mut scores = q.matmul_nt(k);
    scores.scale(scale);
    for i in 0..n {
        for j in 0..m {
            if !visible(i, j) {
                scores[(i, j)] = f32::NEG_INFINITY;
            }
        }
    }
    softmax_in_place(&mut scores);
    scores.matmul(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_tensor::SeededGaussian;

    #[test]
    fn causal_equals_masked_with_causal_closure() {
        let mut g = SeededGaussian::new(11);
        let q = g.matrix(6, 4, 1.0);
        let k = g.matrix(6, 4, 1.0);
        let v = g.matrix(6, 4, 1.0);
        let a = causal_attention_reference(&q, &k, &v, 0.5);
        let b = masked_attention_reference(&q, &k, &v, 0.5, |i, j| j <= i);
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn first_token_attends_only_itself() {
        let mut g = SeededGaussian::new(3);
        let q = g.matrix(4, 4, 1.0);
        let k = g.matrix(4, 4, 1.0);
        let v = g.matrix(4, 4, 1.0);
        let out = causal_attention_reference(&q, &k, &v, 0.5);
        for c in 0..4 {
            assert!((out[(0, c)] - v[(0, c)]).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_keys_average_values() {
        // All-zero queries and keys → uniform weights → row i is the mean of v[0..=i].
        let q = Matrix::zeros(3, 2);
        let k = Matrix::zeros(3, 2);
        let v = Matrix::from_rows(&[&[0.0, 3.0], &[2.0, 3.0], &[4.0, 3.0]]);
        let out = causal_attention_reference(&q, &k, &v, 1.0);
        assert!((out[(2, 0)] - 2.0).abs() < 1e-6);
        assert!((out[(2, 1)] - 3.0).abs() < 1e-6);
        assert!((out[(1, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fully_masked_row_yields_zeros() {
        let mut g = SeededGaussian::new(5);
        let q = g.matrix(2, 2, 1.0);
        let k = g.matrix(2, 2, 1.0);
        let v = g.matrix(2, 2, 1.0);
        let out = masked_attention_reference(&q, &k, &v, 1.0, |i, _| i != 0);
        assert_eq!(out.row(0), &[0.0, 0.0]);
    }
}
