//! Property tests for the block-sparse attention kernels and patterns.

use lserve_attention::{
    causal_attention_reference, masked_attention_reference, prefill_attention, BlockDecision,
    BlockPattern, DensePattern, MaskPattern, StreamingPattern,
};
use lserve_tensor::{Matrix, SeededGaussian};
use proptest::prelude::*;

fn qkv(n: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut g = SeededGaussian::new(seed);
    (
        g.matrix(n, d, 1.0),
        g.matrix(n, d, 1.0),
        g.matrix(n, d, 1.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tiled kernel with the dense pattern equals naive causal attention for
    /// arbitrary sequence lengths and (possibly ragged, rectangular) tile sizes.
    #[test]
    fn dense_tiled_equals_reference(
        n in 1usize..48,
        tq in 1usize..17,
        tk in 1usize..17,
        seed in 0u64..1000,
    ) {
        let d = 4;
        let (q, k, v) = qkv(n, d, seed);
        let scale = 1.0 / (d as f32).sqrt();
        let want = causal_attention_reference(&q, &k, &v, scale);
        let (got, stats) = prefill_attention(&q, &k, &v, scale, tq, tk, &DensePattern);
        prop_assert!(got.max_abs_diff(&want) < 1e-3, "diff {}", got.max_abs_diff(&want));
        prop_assert_eq!(stats.sparsity(), 0.0);
    }

    /// Any causal block pattern, expanded to a token-level mask, must agree with the
    /// kernel exactly (streaming variant).
    #[test]
    fn streaming_kernel_equals_expanded_mask(
        blocks in 2usize..10,
        b in 2usize..9,
        sink in 0usize..3,
        local in 1usize..4,
        seed in 0u64..1000,
    ) {
        let n = blocks * b;
        let (q, k, v) = qkv(n, 4, seed);
        let scale = 0.5;
        let p = StreamingPattern::new(sink, local);
        let (got, _) = prefill_attention(&q, &k, &v, scale, b, b, &p);
        let want = masked_attention_reference(&q, &k, &v, scale, |i, j| {
            if j > i {
                return false;
            }
            let qt = i / b;
            let kb = j / b;
            kb < sink || kb + local > qt
        });
        prop_assert!(got.max_abs_diff(&want) < 1e-3);
    }

    /// Iterator coverage is exact: `blocks_for_tile` yields each causally visible,
    /// pattern-selected block exactly once, in order, with the right decision.
    #[test]
    fn iterator_coverage_exact(
        blocks in 1usize..12,
        b in 1usize..8,
        sink in 0usize..3,
        local in 1usize..4,
    ) {
        let n = blocks * b;
        let p = StreamingPattern::new(sink, local);
        for qt in 0..blocks {
            let visited = p.blocks_for_tile(qt, b, b, n);
            let mut prev: Option<usize> = None;
            for &(kb, decision) in &visited {
                prop_assert!(kb <= qt, "future block");
                prop_assert_eq!(decision, p.decide(qt, kb, b, b, n));
                prop_assert_ne!(decision, BlockDecision::Skip);
                if let Some(pr) = prev {
                    prop_assert!(kb > pr, "unordered or duplicate block");
                }
                prev = Some(kb);
            }
            // Everything not yielded must be Skip.
            let yielded: Vec<usize> = visited.iter().map(|&(kb, _)| kb).collect();
            for kb in 0..blocks {
                if !yielded.contains(&kb) {
                    prop_assert_eq!(p.decide(qt, kb, b, b, n), BlockDecision::Skip);
                }
            }
        }
    }

    /// Tile counts are consistent: visited <= total, and the dense pattern's visited
    /// equals its total.
    #[test]
    fn tile_count_consistency(
        n in 1usize..200,
        b in 1usize..16,
        keep in 0usize..4,
        seed in 0u64..100,
    ) {
        let nb = n.div_ceil(b);
        let m = MaskPattern::random_causal(nb, nb, keep, seed);
        let (v, t) = m.tile_counts(b, b, n);
        prop_assert!(v <= t);
        let (dv, dt) = DensePattern.tile_counts(b, b, n);
        prop_assert_eq!(dv, dt);
        prop_assert_eq!(t, dt);
    }

    /// Subset monotonicity: adding blocks to a mask moves the output toward the
    /// dense reference (never away in the limit), and the full mask reproduces it.
    #[test]
    fn full_mask_equals_dense(
        blocks in 1usize..8,
        b in 2usize..8,
        seed in 0u64..1000,
    ) {
        let n = blocks * b;
        let (q, k, v) = qkv(n, 4, seed);
        let mut m = MaskPattern::new(blocks, blocks);
        for qt in 0..blocks {
            for kb in 0..=qt {
                m.set(qt, kb);
            }
        }
        let (got, stats) = prefill_attention(&q, &k, &v, 0.5, b, b, &m);
        let want = causal_attention_reference(&q, &k, &v, 0.5);
        prop_assert!(got.max_abs_diff(&want) < 1e-3);
        prop_assert_eq!(stats.sparsity(), 0.0);
    }
}
