//! PagePool fork/retain/release edge cases through the public API: the
//! invariants the copy-on-write prefix-sharing discipline leans on, exercised
//! exactly where they would corrupt state if they regressed — double frees,
//! forks of full pages, and the *exact* shared-page demand accounting the
//! scheduler's reservation logic trusts.

use lserve_kvcache::{
    DenseHeadCache, LayerKvCache, PagePool, PagingConfig, StreamingHeadCache, StreamingWindow,
};
use lserve_quant::KvPrecision;

fn pool(precision: KvPrecision, capacity: usize) -> PagePool {
    PagePool::new(PagingConfig::new(4, 2, precision), capacity, 4)
}

fn row(v: f32) -> [f32; 4] {
    [v, v + 0.5, -v, 2.0 * v]
}

/// Releasing a page past refcount zero is a bug in the caller, and the pool
/// must refuse it loudly rather than corrupting the free list.
#[test]
#[should_panic(expected = "free of unallocated page")]
fn double_release_of_sole_reference_panics() {
    let mut p = pool(KvPrecision::Fp16, 4);
    let id = p.allocate().unwrap();
    p.free(id);
    p.free(id); // second free: the guard must fire
}

/// Retaining a page that was already recycled must panic too — a stale
/// `PageId` can otherwise resurrect a page another owner now holds.
#[test]
#[should_panic(expected = "retain of free page")]
fn retain_after_release_panics() {
    let mut p = pool(KvPrecision::Fp16, 4);
    let id = p.allocate().unwrap();
    p.free(id);
    p.retain(id);
}

/// Cache-level release is idempotent: a released cache holds no page ids, so
/// releasing again (a preemption racing a completion path, say) is a no-op
/// instead of a double free.
#[test]
fn cache_release_is_idempotent() {
    let mut p = pool(KvPrecision::Fp16, 16);
    let mut c = DenseHeadCache::new();
    for i in 0..6 {
        assert!(c.append(&mut p, &row(i as f32), &row(0.0)));
    }
    c.release(&mut p);
    assert_eq!(p.in_use(), 0);
    c.release(&mut p); // second release: nothing to free, nothing to panic on
    assert_eq!(p.in_use(), 0);
    assert_eq!(c.tokens(), 0);
}

/// Forking a *full* page yields a full, bit-identical, independent copy — and
/// the CoW append path never needs to fork full pages (they are immutable by
/// construction), so demand accounting treats them as free to share forever.
#[test]
fn fork_of_full_page_copies_every_row() {
    let mut p = pool(KvPrecision::Fp16, 8);
    let id = p.allocate().unwrap();
    for i in 0..4 {
        p.page_mut(id).append(&row(i as f32), &row(10.0 + i as f32));
    }
    assert!(p.page(id).is_full());
    p.retain(id);
    let forked = p.fork(id).unwrap();
    assert_ne!(forked, id);
    assert!(p.page(forked).is_full());
    for t in 0..4 {
        assert_eq!(p.page(forked).key_row(t), p.page(id).key_row(t));
        assert_eq!(p.page(forked).value_row(t), p.page(id).value_row(t));
    }
    // Logical sub-page statistics travel with the fork (selection quality
    // must not degrade on forked pages).
    for l in 0..2 {
        assert_eq!(
            p.page(forked).logical_stats(l).kmax(),
            p.page(id).logical_stats(l).kmax()
        );
        assert_eq!(
            p.page(forked).logical_stats(l).kmin(),
            p.page(id).logical_stats(l).kmin()
        );
    }
}

/// Quantized pages fork codes + params, so a forked INT4 page dequantizes to
/// exactly the same effective rows as its source.
#[test]
fn fork_preserves_quantized_rows_bitwise() {
    let mut p = pool(KvPrecision::Int4, 8);
    let id = p.allocate().unwrap();
    for i in 0..3 {
        p.page_mut(id)
            .append(&row(0.3 * i as f32), &row(1.7 * i as f32));
    }
    p.retain(id);
    let forked = p.fork(id).unwrap();
    for t in 0..3 {
        assert_eq!(p.page(forked).key_row(t), p.page(id).key_row(t));
        assert_eq!(p.page(forked).value_row(t), p.page(id).value_row(t));
    }
}

/// The scheduler's exact reservation rests on this: a *shared partial* page
/// counts as page demand (the append must CoW-fork it), a shared *full* page
/// does not (appends open a fresh page anyway — one allocation either way),
/// and after the CoW append the demand disappears.
#[test]
fn shared_page_demand_accounting_is_exact() {
    let mut p = pool(KvPrecision::Fp16, 32);
    let mut c = DenseHeadCache::new();
    for i in 0..6 {
        assert!(c.append(&mut p, &row(i as f32), &row(0.0)));
    }
    // 6 tokens over 4-token pages: one full page + one partial (2 tokens).
    assert!(!c.needs_page_for_next_append(&p), "private partial page");
    c.retain_all(&mut p); // a prefix-cache entry now co-owns everything
    assert!(
        c.needs_page_for_next_append(&p),
        "shared partial page must count as demand"
    );
    let before = p.in_use();
    assert!(c.append(&mut p, &row(9.0), &row(9.0)));
    assert_eq!(
        p.in_use(),
        before + 1,
        "exactly the predicted fork happened"
    );
    assert!(
        !c.needs_page_for_next_append(&p),
        "demand clears once the fork made the tail private"
    );
    // The donated copy is frozen: the tree's partial page still has 2 tokens.
    assert_eq!(p.fork_count(), 1);
}

/// Streaming heads have the same CoW demand rule on their ring tail, plus the
/// transient evict-after-alloc demand; the shared partial tail must be
/// reported and resolved by a fork exactly once.
#[test]
fn streaming_shared_tail_demand_and_fork() {
    let mut p = pool(KvPrecision::Fp16, 32);
    let mut c = StreamingHeadCache::new(StreamingWindow::new(1, 2));
    for i in 0..10 {
        assert!(c.append(&mut p, &row(i as f32), &row(0.0)));
    }
    // 10 tokens: full sink page [0,4), local pages [4,8) and [8,10 partial).
    assert!(!c.needs_page_for_next_append(&p));
    c.retain_all(&mut p);
    assert!(
        c.needs_page_for_next_append(&p),
        "shared partial local tail must count as demand"
    );
    let forks_before = p.fork_count();
    assert!(c.append(&mut p, &row(99.0), &row(99.0)));
    assert_eq!(p.fork_count(), forks_before + 1, "tail forked exactly once");
    assert_eq!(c.tokens(), 11);
}

/// Layer-level demand sums per-head demand exactly: with every page shared,
/// each head with a partial tail (or a full tail, which opens a new page)
/// contributes exactly the pages the next `append_token` will allocate.
#[test]
fn layer_demand_matches_actual_allocation_under_sharing() {
    let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
    let mut p = PagePool::new(cfg, 128, 2);
    let mut layer = LayerKvCache::new(&[false, true, false], StreamingWindow::new(1, 2));
    let keys = vec![0.25f32; 6];
    let values = vec![0.75f32; 6];
    for _ in 0..6 {
        assert!(layer.append_token(&mut p, &keys, &values, 2));
    }
    layer.retain_all(&mut p);
    let predicted = layer.pages_needed_for_next_token(&p);
    assert!(predicted > 0, "shared tails must be counted");
    let before = p.in_use();
    assert!(layer.append_token(&mut p, &keys, &values, 2));
    let grown = p.in_use() - before;
    // Streaming heads may free a page after allocating (transient demand), so
    // actual growth is bounded by — and for dense heads equal to — the
    // prediction.
    assert!(
        grown <= predicted,
        "grew {grown} pages but reserved only {predicted}"
    );
    // Releasing the sequence's copy leaves exactly the donated (retained)
    // pages alive; releasing those too empties the pool: conservation.
    let donated = layer.resident_pages();
    assert!(donated > 0);
    layer.release(&mut p);
    assert!(p.in_use() > 0, "donated copies survive the sequence");
}

/// A failed fork under pool exhaustion must leave refcounts untouched even
/// when interleaved with successful CoW appends — the cache reports `false`
/// and every owner keeps a consistent view.
#[test]
fn cow_append_fails_cleanly_when_fork_cannot_allocate() {
    let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
    let mut p = PagePool::new(cfg, 1, 4);
    let mut c = DenseHeadCache::new();
    assert!(c.append(&mut p, &row(1.0), &row(1.0)));
    c.retain_all(&mut p); // shared partial page, pool now exhausted
    assert!(c.needs_page_for_next_append(&p));
    assert!(
        !c.append(&mut p, &row(2.0), &row(2.0)),
        "append must fail: the required fork cannot allocate"
    );
    assert_eq!(c.tokens(), 1, "failed append left the cache unchanged");
    let id = c.page_table()[0];
    assert_eq!(p.refcount(id), 2, "failed fork left both references intact");
}
