//! Demote/promote edge cases of the two-tier page pool as the head caches
//! drive it: shared CoW pages, partial last pages, streaming rings, and the
//! exactness of cold-page demand accounting.

use lserve_kvcache::{
    transfer_cost_tokens, DenseHeadCache, LayerKvCache, PagePool, PagingConfig, StreamingHeadCache,
    StreamingWindow, HOST_TRANSFER_SPEEDUP,
};
use lserve_quant::KvPrecision;

fn pool(capacity: usize) -> PagePool {
    PagePool::new(PagingConfig::new(4, 2, KvPrecision::Fp16), capacity, 2)
}

fn fill_dense(pool: &mut PagePool, cache: &mut DenseHeadCache, n: usize) {
    for i in 0..n {
        assert!(cache.append(pool, &[i as f32, 1.0], &[2.0, i as f32]));
    }
}

#[test]
fn dense_swap_round_trip_preserves_partial_last_page() {
    let mut p = pool(16);
    let mut c = DenseHeadCache::new();
    fill_dense(&mut p, &mut c, 10); // pages: 4 + 4 + 2 (partial last)
    let hot_before = p.in_use();
    let (pages, units) = c.demote_all(&mut p);
    assert_eq!(pages, 3, "the partial last page swaps out too");
    assert_eq!(
        units,
        3 * 4,
        "full page slots cross the link, not just rows"
    );
    assert_eq!(p.in_use(), hot_before - 3);
    assert_eq!(c.cold_pages(&p), 3);
    let (back, back_units) = c.promote_all(&mut p).unwrap();
    assert_eq!((back, back_units), (3, 12));
    assert_eq!(c.cold_pages(&p), 0);
    // Contents and append position survive the round trip: the partial last
    // page keeps accepting rows.
    assert_eq!(c.key(&p, 9), vec![9.0, 1.0]);
    assert!(c.append(&mut p, &[99.0, 1.0], &[0.0, 0.0]));
    assert_eq!(c.tokens(), 11);
    assert_eq!(
        c.num_pages(),
        3,
        "append lands in the promoted partial page"
    );
}

#[test]
fn shared_cow_pages_stay_hot_through_demote_all() {
    let mut p = pool(16);
    let mut c = DenseHeadCache::new();
    fill_dense(&mut p, &mut c, 6);
    // A prefix-cache entry co-owns the first page only.
    p.retain(c.page_table()[0]);
    let (pages, _) = c.demote_all(&mut p);
    assert_eq!(pages, 1, "only the sole-owned page may leave the hot tier");
    assert!(p.is_hot(c.page_table()[0]), "co-owned page pinned hot");
    assert!(!p.is_hot(c.page_table()[1]));
    assert_eq!(c.cold_pages(&p), 1);
    // The co-owner drops its reference; a second pass may now demote it.
    p.free(c.page_table()[0]);
    let (pages, _) = c.demote_all(&mut p);
    assert_eq!(pages, 1);
    assert_eq!(c.cold_pages(&p), 2);
    c.promote_all(&mut p).unwrap();
    c.release(&mut p);
    assert_eq!(p.total_in_use(), 0);
}

#[test]
fn streaming_ring_swaps_whole_and_keeps_evicting() {
    let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
    let mut p = PagePool::new(cfg, 16, 2);
    let mut c = StreamingHeadCache::new(StreamingWindow::new(1, 2));
    for i in 0..20 {
        assert!(c.append(&mut p, &[i as f32, 0.0], &[0.0, 0.0]));
    }
    let resident = c.resident_pages();
    let (pages, _) = c.demote_all(&mut p);
    assert_eq!(pages as usize, resident, "sink + local ring all swap out");
    assert_eq!(c.cold_pages(&p), resident);
    c.promote_all(&mut p).unwrap();
    assert_eq!(c.cold_pages(&p), 0);
    // The ring keeps rolling after the round trip: eviction still frees the
    // oldest local page and the pool's hot accounting stays consistent.
    for i in 20..40 {
        assert!(c.append(&mut p, &[i as f32, 0.0], &[0.0, 0.0]));
    }
    assert!(c.resident_pages() <= c.window().max_pages());
    assert_eq!(p.cold_in_use(), 0);
    c.release(&mut p);
    assert_eq!(p.total_in_use(), 0);
}

#[test]
fn promote_all_reports_exhaustion_without_corruption() {
    let mut p = pool(4);
    let mut c = DenseHeadCache::new();
    fill_dense(&mut p, &mut c, 12); // 3 pages, pool of 4
    c.demote_all(&mut p);
    // Another tenant grabs the freed hot slots.
    let squatters: Vec<_> = (0..3).map(|_| p.allocate().unwrap()).collect();
    assert_eq!(p.free_pages(), 1);
    assert!(
        c.promote_all(&mut p).is_none(),
        "promotion must report a full hot tier"
    );
    assert_eq!(
        c.cold_pages(&p),
        2,
        "exactly the pages that fit were promoted"
    );
    for id in squatters {
        p.free(id);
    }
    c.promote_all(&mut p).unwrap();
    assert_eq!(c.cold_pages(&p), 0);
    c.release(&mut p);
    assert_eq!(p.total_in_use(), 0);
}

#[test]
fn layer_cold_demand_is_exact_across_head_kinds() {
    let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
    let mut p = PagePool::new(cfg, 256, 2);
    let layer = {
        let mut l = LayerKvCache::new(&[false, true, false], StreamingWindow::new(1, 2));
        let keys = vec![0.5f32; 6];
        let values = vec![0.5f32; 6];
        for _ in 0..30 {
            assert!(l.append_token(&mut p, &keys, &values, 2));
        }
        l
    };
    let resident = layer.resident_pages();
    let (pages, units) = layer.demote_all(&mut p);
    assert_eq!(pages as usize, resident);
    assert_eq!(layer.cold_pages(&p), resident);
    assert_eq!(units, pages * 4);
    // The modeled transfer cost is deterministic and rounds up.
    assert_eq!(
        transfer_cost_tokens(units),
        units.div_ceil(HOST_TRANSFER_SPEEDUP)
    );
    let (back, _) = layer.promote_all(&mut p).unwrap();
    assert_eq!(back, pages);
    assert_eq!(layer.cold_pages(&p), 0);
}

#[test]
fn quantized_pages_survive_the_round_trip_bit_exactly() {
    let cfg = PagingConfig::new(4, 2, KvPrecision::Int4);
    let mut p = PagePool::new(cfg, 16, 4);
    let mut c = DenseHeadCache::new();
    for i in 0..7 {
        let x = i as f32 * 0.37 - 1.0;
        assert!(c.append(&mut p, &[x, -x, 2.0 * x, 0.5], &[x, x, -x, 1.0]));
    }
    let before: Vec<Vec<f32>> = (0..7).map(|t| c.key(&p, t)).collect();
    c.demote_all(&mut p);
    c.promote_all(&mut p).unwrap();
    let after: Vec<Vec<f32>> = (0..7).map(|t| c.key(&p, t)).collect();
    assert_eq!(before, after, "migration must never touch stored codes");
}
