//! Property tests for the page pool and the two-way caches.

use lserve_kvcache::{
    DenseHeadCache, LogicalPageStats, PagePool, PagingConfig, StreamingHeadCache, StreamingWindow,
};
use lserve_quant::KvPrecision;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Allocator safety under arbitrary alloc/free interleavings: ids are unique
    /// among live pages, capacity is conserved, freed pages are reusable.
    #[test]
    fn allocator_never_double_allocates(ops in prop::collection::vec(prop::bool::ANY, 1..200)) {
        let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 16, 4);
        let mut live: Vec<_> = Vec::new();
        for alloc in ops {
            if alloc {
                if let Some(id) = pool.allocate() {
                    prop_assert!(!live.contains(&id), "id {id:?} double-allocated");
                    live.push(id);
                }
            } else if let Some(id) = live.pop() {
                pool.free(id);
            }
            prop_assert_eq!(pool.in_use(), live.len());
            prop_assert!(pool.in_use() <= pool.capacity());
        }
    }

    /// Dense cache round-trips every appended row regardless of page geometry and
    /// precision (within the precision's quantization step).
    #[test]
    fn dense_cache_round_trip(
        tokens in 1usize..80,
        np_exp in 0usize..4,
        quantized in prop::bool::ANY,
    ) {
        let np = 2usize << np_exp;
        let nl = np.min(2);
        let precision = if quantized { KvPrecision::Int8 } else { KvPrecision::Fp16 };
        let cfg = PagingConfig::new(np, nl, precision);
        let mut pool = PagePool::new(cfg, cfg.pages_for(tokens) + 1, 4);
        let mut cache = DenseHeadCache::new();
        for t in 0..tokens {
            let k = [t as f32 * 0.1, -(t as f32) * 0.2, 1.0, -1.0];
            prop_assert!(cache.append(&mut pool, &k, &k));
        }
        prop_assert_eq!(cache.tokens(), tokens);
        prop_assert_eq!(cache.num_pages(), cfg.pages_for(tokens));
        for t in 0..tokens {
            let got = cache.key(&pool, t);
            let want = [t as f32 * 0.1, -(t as f32) * 0.2, 1.0, -1.0];
            for (a, b) in got.iter().zip(&want) {
                // INT8 over the row's range; generous bound.
                let tol = if quantized { 0.1 } else { 1e-6 };
                prop_assert!((a - b).abs() <= tol, "{a} vs {b}");
            }
        }
        cache.release(&mut pool);
        prop_assert_eq!(pool.in_use(), 0);
    }

    /// Streaming cache residency is bounded by the window for any append count.
    #[test]
    fn streaming_residency_bounded(
        tokens in 1usize..300,
        sink in 0usize..3,
        local in 1usize..4,
    ) {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 64, 2);
        let mut cache = StreamingHeadCache::new(StreamingWindow::new(sink, local));
        for t in 0..tokens {
            prop_assert!(cache.append(&mut pool, &[t as f32, 0.0], &[0.0, 0.0]));
        }
        prop_assert!(cache.resident_pages() <= sink + local + 1);
        prop_assert_eq!(cache.tokens(), tokens);
        // The newest token is always resident.
        let table = cache.page_table(&pool);
        let (start, id) = *table.last().unwrap();
        prop_assert_eq!(start + pool.page(id).len(), tokens);
        cache.release(&mut pool);
        prop_assert_eq!(pool.in_use(), 0);
    }

    /// Logical page statistics bound every member key's dot product with any query
    /// (the Eq. 2 soundness property the selector relies on).
    #[test]
    fn importance_bound_sound(
        keys in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 4), 1..20),
        query in prop::collection::vec(-3.0f32..3.0, 4),
    ) {
        let mut stats = LogicalPageStats::new(4);
        for k in &keys {
            stats.update(k);
        }
        let bound = stats.importance(&query);
        for k in &keys {
            let dot: f32 = query.iter().zip(k).map(|(a, b)| a * b).sum();
            prop_assert!(dot <= bound + 1e-4, "dot {dot} exceeds bound {bound}");
        }
    }

    /// Refcount invariants under arbitrary allocate/retain/free/fork churn, the
    /// operation mix the prefix cache generates: reference counts follow a shadow
    /// model exactly, a page never leaks or double-frees, forked pages carry
    /// bit-identical contents, and releasing every outstanding reference returns
    /// `in_use()` to zero.
    #[test]
    fn refcounts_survive_retain_free_fork_churn(
        ops in prop::collection::vec((0u8..4, 0usize..1_000_000), 1..300),
    ) {
        let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 12, 2);
        // Shadow model: one entry per reference we hold (a page may appear as
        // many times as its refcount), plus the row count written to each page.
        let mut refs: Vec<lserve_kvcache::PageId> = Vec::new();
        let mut stamp = 0f32;
        for (op, pick) in ops {
            match op {
                // Allocate and write a distinguishable row.
                0 => {
                    if let Some(id) = pool.allocate() {
                        prop_assert_eq!(pool.refcount(id), 1);
                        stamp += 1.0;
                        pool.page_mut(id).append(&[stamp, -stamp], &[stamp, stamp]);
                        refs.push(id);
                    } else {
                        // Exhaustion must mean every slot is accounted for.
                        prop_assert_eq!(pool.in_use(), pool.capacity());
                    }
                }
                // Retain a reference we already hold.
                1 => {
                    if !refs.is_empty() {
                        let id = refs[pick % refs.len()];
                        let before = pool.refcount(id);
                        pool.retain(id);
                        prop_assert_eq!(pool.refcount(id), before + 1);
                        refs.push(id);
                    }
                }
                // Free one of our references.
                2 => {
                    if !refs.is_empty() {
                        let id = refs.swap_remove(pick % refs.len());
                        let before = pool.refcount(id);
                        pool.free(id);
                        let live = refs.iter().filter(|&&r| r == id).count() as u32;
                        prop_assert_eq!(live, before - 1);
                        if live > 0 {
                            prop_assert_eq!(pool.refcount(id), live);
                        }
                    }
                }
                // Copy-on-write fork of one of our references.
                _ => {
                    if !refs.is_empty() {
                        let i = pick % refs.len();
                        let id = refs[i];
                        let want_key = pool.page(id).key_row(0).to_vec();
                        let shared_before = pool.is_shared(id);
                        if let Some(forked) = pool.fork(id) {
                            refs[i] = forked;
                            prop_assert_eq!(pool.refcount(forked), 1);
                            prop_assert_eq!(pool.page(forked).key_row(0), &want_key[..]);
                            if shared_before {
                                // Other holders keep the original alive.
                                prop_assert!(pool.refcount(id) >= 1);
                            }
                        } else {
                            // Failed fork must leave the reference untouched.
                            prop_assert!(pool.refcount(id) >= 1);
                        }
                    }
                }
            }
            // Global invariants after every operation.
            let mut counts = std::collections::HashMap::new();
            for &id in &refs {
                *counts.entry(id).or_insert(0u32) += 1;
            }
            prop_assert_eq!(pool.in_use(), counts.len(), "live pages == distinct refs");
            for (&id, &n) in &counts {
                prop_assert_eq!(pool.refcount(id), n, "shadow refcount diverged");
            }
            prop_assert_eq!(
                pool.shared_pages(),
                counts.values().filter(|&&n| n > 1).count()
            );
        }
        // Drain every reference: the pool must return to empty.
        for id in refs.drain(..) {
            pool.free(id);
        }
        prop_assert_eq!(pool.in_use(), 0, "leaked pages after full release");
    }

    /// Per-page logical stats equal brute-force stats over the same token ranges.
    #[test]
    fn page_stats_match_bruteforce(tokens in 1usize..40) {
        let cfg = PagingConfig::new(8, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, cfg.pages_for(tokens) + 1, 2);
        let mut cache = DenseHeadCache::new();
        let key_of = |t: usize| [ (t as f32 * 1.3).sin(), (t as f32 * 0.7).cos() ];
        for t in 0..tokens {
            cache.append(&mut pool, &key_of(t), &[0.0, 0.0]);
        }
        for p in 0..cache.num_pages() {
            let page = pool.page(cache.page_table()[p]);
            for l in 0..cfg.logical_per_physical() {
                let start = p * 8 + l * 2;
                let end = (start + 2).min(tokens);
                if start >= tokens {
                    prop_assert!(page.logical_stats(l).is_empty());
                    continue;
                }
                let mut want = LogicalPageStats::new(2);
                for t in start..end {
                    want.update(&key_of(t));
                }
                prop_assert_eq!(page.logical_stats(l).kmin(), want.kmin());
                prop_assert_eq!(page.logical_stats(l).kmax(), want.kmax());
            }
        }
    }
}
