//! In-flight page-state semantics of the asynchronous migration engine.
//!
//! These tests pin the `Residency::Migrating` discipline: what a transfer in
//! flight means for slot accounting, readability, CoW/refcounts, cancellation
//! on free, demand forcing, and the prefetch hit/waste ledger. The
//! executor-level guarantee (async ≡ sync outputs) lives in
//! `tests/proptest_migration.rs` at the workspace root.

use lserve_kvcache::{
    DenseHeadCache, MigrationDir, MigrationMode, PagePool, PagingConfig, Residency,
    COPY_CHANNEL_DEPTH,
};
use lserve_quant::KvPrecision;

const PAGE_UNITS: u64 = 4;

fn async_pool(capacity: usize) -> PagePool {
    PagePool::new_with_migration(
        PagingConfig::new(PAGE_UNITS as usize, 2, KvPrecision::Fp16),
        capacity,
        4,
        MigrationMode::Async,
    )
}

#[test]
fn demote_frees_hot_slot_only_when_transfer_lands() {
    let mut p = async_pool(4);
    let id = p.allocate().unwrap();
    assert_eq!(p.demote(id), Some(PAGE_UNITS));
    // In flight: still occupying (and readable from) the hot tier.
    assert_eq!(p.residency(id), Residency::Migrating(MigrationDir::ToCold));
    assert!(p.is_hot(id), "outbound page stays readable until landing");
    assert_eq!(p.in_use(), 1);
    assert_eq!(p.cold_in_use(), 0);
    // ... but its slot is reclaimable, so free_pages counts it.
    assert_eq!(p.free_pages(), 4);
    p.advance_transfer_units(PAGE_UNITS);
    assert_eq!(p.residency(id), Residency::Cold);
    assert!(!p.is_hot(id));
    assert_eq!(p.in_use(), 0);
    assert_eq!(p.cold_in_use(), 1);
    assert_eq!(p.migration_stats().hidden_token_units, PAGE_UNITS);
    assert_eq!(p.migration_stats().unhidden_token_units, 0);
}

#[test]
fn promote_at_step_t_is_usable_after_latency() {
    let mut p = async_pool(4);
    let id = p.allocate().unwrap();
    p.demote(id).unwrap();
    p.advance_transfer_units(PAGE_UNITS);
    assert_eq!(p.promote(id), Some(PAGE_UNITS));
    assert_eq!(p.residency(id), Residency::Migrating(MigrationDir::ToHot));
    assert!(!p.is_hot(id), "inbound page unreadable until it lands");
    assert_eq!(p.in_use(), 1, "hot slot held from issue");
    assert_eq!(p.cold_in_use(), 0);
    // Half the bandwidth: still in flight.
    p.advance_transfer_units(PAGE_UNITS / 2);
    assert!(!p.is_hot(id));
    p.advance_transfer_units(PAGE_UNITS / 2);
    assert!(p.is_hot(id));
    assert_eq!(p.residency(id), Residency::Hot);
}

#[test]
fn demote_while_migrating_is_refused() {
    let mut p = async_pool(4);
    let id = p.allocate().unwrap();
    p.demote(id).unwrap();
    assert_eq!(p.demote(id), None, "already draining out");
    // Inbound in-flight pages *can* be re-demoted (the promote is aborted).
    p.advance_transfer_units(PAGE_UNITS);
    p.promote(id).unwrap();
    assert_eq!(p.residency(id), Residency::Migrating(MigrationDir::ToHot));
    assert_eq!(
        p.demote(id),
        Some(PAGE_UNITS),
        "re-demote aborts the promote"
    );
    assert_eq!(p.residency(id), Residency::Migrating(MigrationDir::ToCold));
    assert!(p.migration_stats().cancelled_token_units >= PAGE_UNITS);
}

#[test]
fn promote_before_demote_completes_is_free() {
    let mut p = async_pool(4);
    let id = p.allocate().unwrap();
    p.demote(id).unwrap();
    p.advance_transfer_units(1); // partial drain
    assert_eq!(p.promote(id), Some(0), "device copy never left");
    assert_eq!(p.residency(id), Residency::Hot);
    assert_eq!(p.in_use(), 1);
    assert_eq!(p.cold_in_use(), 0);
    let m = p.migration_stats();
    assert_eq!(m.cancelled_token_units, PAGE_UNITS - 1);
    assert_eq!(m.unhidden_token_units, 0, "nothing stalled");
    // Later advances have nothing to drain for this page.
    p.advance_transfer_units(100);
    assert_eq!(p.residency(id), Residency::Hot);
}

#[test]
fn cow_fork_of_a_migrating_page_keeps_both_copies_consistent() {
    let mut p = async_pool(4);
    let id = p.allocate().unwrap();
    p.page_mut(id)
        .append(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
    p.demote(id).unwrap();
    // A second owner appears while the page drains out (e.g. the prefix
    // cache retaining a donor's table), then forks to append.
    p.retain(id);
    assert_eq!(p.residency(id), Residency::Migrating(MigrationDir::ToCold));
    let forked = p.fork(id).unwrap();
    assert_ne!(forked, id);
    assert_eq!(p.residency(forked), Residency::Hot, "forks are always hot");
    assert_eq!(p.page(forked).key_row(0), &[1.0, 2.0, 3.0, 4.0]);
    assert_eq!(p.refcount(id), 1, "fork dropped the caller's reference");
    // The source's outbound transfer is unaffected and still lands.
    p.advance_transfer_units(PAGE_UNITS);
    assert_eq!(p.residency(id), Residency::Cold);
    assert_eq!(p.cold_in_use(), 1);
    assert_eq!(p.in_use(), 1);
}

#[test]
fn free_while_migrating_cancels_and_conserves_slots() {
    let mut p = async_pool(2);
    let a = p.allocate().unwrap();
    let b = p.allocate().unwrap();
    p.demote(a).unwrap();
    p.free(a); // outbound in flight
    p.demote(b).unwrap();
    p.advance_transfer_units(PAGE_UNITS);
    p.promote(b).unwrap();
    p.free(b); // inbound in flight
    assert_eq!(p.total_in_use(), 0);
    assert_eq!(p.in_flight_transfers(), 0, "frees cancelled both transfers");
    // Slots are genuinely reusable.
    let ids: Vec<_> = (0..2).map(|_| p.allocate().unwrap()).collect();
    assert_eq!(p.in_use(), 2);
    assert!(p.allocate().is_none());
    drop(ids);
}

#[test]
fn allocate_reclaims_inflight_demotions_by_forcing() {
    let mut p = async_pool(2);
    let a = p.allocate().unwrap();
    let _b = p.allocate().unwrap();
    p.demote(a).unwrap();
    assert_eq!(
        p.free_pages(),
        1,
        "in-flight demotion counts as reclaimable"
    );
    // No bandwidth has drained; allocation must force the transfer.
    let c = p.allocate().unwrap();
    assert_ne!(c, a);
    assert_eq!(p.residency(a), Residency::Cold, "forced to completion");
    let m = p.migration_stats();
    assert_eq!(
        m.unhidden_token_units, PAGE_UNITS,
        "remainder charged as stall"
    );
    assert_eq!(m.forced_completions, 1);
    assert_eq!(p.free_pages(), 0);
}

#[test]
fn bounded_channel_forces_oldest_when_full() {
    let mut p = async_pool(COPY_CHANNEL_DEPTH + 2);
    let ids: Vec<_> = (0..COPY_CHANNEL_DEPTH + 1)
        .map(|_| p.allocate().unwrap())
        .collect();
    for &id in &ids {
        p.demote(id).unwrap();
    }
    assert_eq!(
        p.in_flight_transfers(),
        COPY_CHANNEL_DEPTH,
        "queue depth is bounded"
    );
    assert_eq!(
        p.residency(ids[0]),
        Residency::Cold,
        "oldest was forced out"
    );
    assert_eq!(p.migration_stats().forced_completions, 1);
    assert_eq!(p.migration_stats().unhidden_token_units, PAGE_UNITS);
}

#[test]
fn ensure_hot_charges_only_the_unhidden_remainder() {
    let mut p = async_pool(4);
    let id = p.allocate().unwrap();
    p.demote(id).unwrap();
    p.advance_transfer_units(PAGE_UNITS);
    p.promote(id).unwrap();
    p.advance_transfer_units(PAGE_UNITS - 1); // almost landed
    let before = p.migration_stats().unhidden_token_units;
    assert_eq!(p.ensure_hot(id), Some((0, 1)), "one unit left to wait for");
    assert!(p.is_hot(id));
    assert_eq!(p.migration_stats().unhidden_token_units - before, 1);
    // A hot page is free to ensure.
    assert_eq!(p.ensure_hot(id), Some((0, 0)));
    // A cold page is a demand fetch: fully unhidden.
    p.demote(id).unwrap();
    p.advance_transfer_units(PAGE_UNITS);
    assert_eq!(p.ensure_hot(id), Some((PAGE_UNITS, PAGE_UNITS)));
    assert!(p.is_hot(id));
}

#[test]
fn prefetch_ledger_tracks_hits_and_waste() {
    let mut p = async_pool(4);
    let a = p.allocate().unwrap();
    let b = p.allocate().unwrap();
    for id in [a, b] {
        p.demote(id).unwrap();
    }
    p.advance_transfer_units(2 * PAGE_UNITS);
    assert_eq!(p.cold_in_use(), 2);
    // Prefetch both; only `a` is later demanded.
    assert!(p.prefetch(a));
    assert!(p.prefetch(b));
    assert!(!p.prefetch(a), "already in flight: declined");
    p.advance_transfer_units(2 * PAGE_UNITS);
    assert!(p.is_hot(a));
    assert_eq!(p.ensure_hot(a), Some((0, 0)), "prefetched page is free");
    p.demote(b).unwrap();
    let m = p.migration_stats();
    assert_eq!(m.prefetch_issued, 2);
    assert_eq!(m.prefetch_hits, 1);
    assert_eq!(m.prefetch_wasted, 1);
}

#[test]
fn prefetch_never_steals_hot_capacity() {
    let mut p = async_pool(2);
    let a = p.allocate().unwrap();
    p.demote(a).unwrap();
    p.advance_transfer_units(PAGE_UNITS);
    let _b = p.allocate().unwrap();
    let _c = p.allocate().unwrap();
    assert_eq!(p.free_pages(), 0);
    assert!(
        !p.prefetch(a),
        "no free slot: prefetch declined, not forced"
    );
    assert!(!p.prefetch(_b), "hot page: declined");
    assert_eq!(p.migration_stats().prefetch_issued, 0);
}

#[test]
fn swap_in_demand_counts_own_inflight_demotions() {
    let mut p = async_pool(8);
    let mut c = DenseHeadCache::new();
    for i in 0..3 * PAGE_UNITS {
        assert!(c.append(&mut p, &[i as f32; 4], &[i as f32; 4]));
    }
    let table: Vec<_> = c.page_table().to_vec();
    // One demotion still in flight, one fully landed.
    p.demote(table[0]).unwrap();
    p.demote(table[1]).unwrap();
    p.advance_transfer_units(PAGE_UNITS); // lands table[0] only (FIFO head first)
    assert_eq!(p.residency(table[0]), Residency::Cold);
    assert_eq!(
        p.residency(table[1]),
        Residency::Migrating(MigrationDir::ToCold)
    );
    // `cold_pages` sees one page (the in-flight demotion still reads as hot),
    // but a swap-in must reserve both: forcing our own outbound transfer
    // frees a slot and mints a new cold page — net-zero supply.
    assert_eq!(c.cold_pages(&p), 1);
    assert_eq!(c.swap_in_demand(&p), 2);
    // An inbound transfer already holds its slot: no extra demand.
    p.promote(table[0]).unwrap();
    assert_eq!(
        p.residency(table[0]),
        Residency::Migrating(MigrationDir::ToHot)
    );
    assert_eq!(c.swap_in_demand(&p), 1);
    p.advance_transfer_units(10 * PAGE_UNITS);
    assert_eq!(
        c.swap_in_demand(&p),
        1,
        "landed demotion is plain cold demand"
    );
    assert_eq!(c.cold_pages(&p), 1);
}

#[test]
fn sync_mode_charges_everything_unhidden() {
    let mut p = PagePool::new(PagingConfig::new(4, 2, KvPrecision::Fp16), 4, 4);
    assert_eq!(p.migration_mode(), MigrationMode::Sync);
    let id = p.allocate().unwrap();
    p.demote(id).unwrap();
    p.promote(id).unwrap();
    let m = p.migration_stats();
    assert_eq!(m.unhidden_token_units, 2 * PAGE_UNITS);
    assert_eq!(m.hidden_token_units, 0);
    assert_eq!(m.overlap_ratio(), 0.0);
    assert!(!p.prefetch(id), "prefetch is an async-mode concept");
    // advance is a harmless no-op.
    p.advance_transfer_units(1000);
    assert_eq!(p.migration_stats().hidden_token_units, 0);
}
