//! Paging configuration shared by caches, kernels and selectors.

use lserve_quant::KvPrecision;

/// Physical/logical page geometry and KV storage precision.
///
/// The hierarchical paging system of §3.5.2 groups `N_L` tokens into a logical page
/// (the granularity of key statistics and importance scoring) and `N_P = g · N_L`
/// tokens into a physical page (the granularity of memory layout and attention
/// iteration). `physical_page_size == logical_page_size` recovers the flat,
/// Quest-style layout.
///
/// # Example
///
/// ```
/// use lserve_kvcache::PagingConfig;
/// use lserve_quant::KvPrecision;
///
/// let cfg = PagingConfig::new(64, 16, KvPrecision::Int4);
/// assert_eq!(cfg.logical_per_physical(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagingConfig {
    physical_page_size: usize,
    logical_page_size: usize,
    precision: KvPrecision,
}

impl PagingConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero or `physical_page_size` is not a multiple of
    /// `logical_page_size` (the paper requires `N_P = g · N_L`, `g ∈ Z`).
    pub fn new(
        physical_page_size: usize,
        logical_page_size: usize,
        precision: KvPrecision,
    ) -> Self {
        assert!(
            physical_page_size > 0,
            "physical page size must be positive"
        );
        assert!(logical_page_size > 0, "logical page size must be positive");
        assert_eq!(
            physical_page_size % logical_page_size,
            0,
            "physical page size {physical_page_size} must be a multiple of logical page size {logical_page_size}"
        );
        Self {
            physical_page_size,
            logical_page_size,
            precision,
        }
    }

    /// Flat paging (logical == physical), the Quest baseline layout.
    pub fn flat(page_size: usize, precision: KvPrecision) -> Self {
        Self::new(page_size, page_size, precision)
    }

    /// LServe's default geometry: 64-token physical pages, 16-token logical pages,
    /// INT4 KV (paper §4.1 / Figure 13(c)).
    pub fn lserve_default() -> Self {
        Self::new(64, 16, KvPrecision::Int4)
    }

    /// Tokens per physical page (`N_P`).
    pub fn physical_page_size(&self) -> usize {
        self.physical_page_size
    }

    /// Tokens per logical page (`N_L`).
    pub fn logical_page_size(&self) -> usize {
        self.logical_page_size
    }

    /// Logical pages per physical page (`g = N_P / N_L`).
    pub fn logical_per_physical(&self) -> usize {
        self.physical_page_size / self.logical_page_size
    }

    /// KV storage precision.
    pub fn precision(&self) -> KvPrecision {
        self.precision
    }

    /// Number of physical pages needed to hold `tokens` tokens.
    pub fn pages_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.physical_page_size)
    }

    /// Number of logical pages needed to hold `tokens` tokens.
    pub fn logical_pages_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.logical_page_size)
    }
}

impl Default for PagingConfig {
    fn default() -> Self {
        Self::lserve_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = PagingConfig::default();
        assert_eq!(c.physical_page_size(), 64);
        assert_eq!(c.logical_page_size(), 16);
        assert_eq!(c.logical_per_physical(), 4);
        assert_eq!(c.precision(), KvPrecision::Int4);
    }

    #[test]
    fn flat_has_ratio_one() {
        let c = PagingConfig::flat(32, KvPrecision::Fp16);
        assert_eq!(c.logical_per_physical(), 1);
    }

    #[test]
    fn pages_for_rounds_up() {
        let c = PagingConfig::new(64, 16, KvPrecision::Fp16);
        assert_eq!(c.pages_for(0), 0);
        assert_eq!(c.pages_for(1), 1);
        assert_eq!(c.pages_for(64), 1);
        assert_eq!(c.pages_for(65), 2);
        assert_eq!(c.logical_pages_for(65), 5);
    }

    #[test]
    #[should_panic(expected = "must be a multiple")]
    fn rejects_non_multiple() {
        let _ = PagingConfig::new(48, 32, KvPrecision::Fp16);
    }
}
