//! Per-layer two-way composition: dense heads and streaming heads side by side.

use crate::{DenseHeadCache, PagePool, StreamingHeadCache, StreamingWindow};

/// The KV cache of one head: either a dense (retrieval) head keeping full history or
/// a streaming head keeping only sink + local pages.
///
/// This is the "two-way paged KV cache" of Figure 5 at the granularity the kernels
/// consume it.
#[derive(Debug, Clone)]
pub enum HeadCache {
    /// Full-history head with key statistics for page selection.
    Dense(DenseHeadCache),
    /// Λ-masked head retaining only sink and local pages.
    Streaming(StreamingHeadCache),
}

impl HeadCache {
    /// True for the streaming variant.
    pub fn is_streaming(&self) -> bool {
        matches!(self, HeadCache::Streaming(_))
    }

    /// Total tokens ever appended to this head.
    pub fn tokens(&self) -> usize {
        match self {
            HeadCache::Dense(c) => c.tokens(),
            HeadCache::Streaming(c) => c.tokens(),
        }
    }

    /// Appends one `(key, value)` row. Returns `false` if the pool is exhausted.
    pub fn append(&mut self, pool: &mut PagePool, key: &[f32], value: &[f32]) -> bool {
        match self {
            HeadCache::Dense(c) => c.append(pool, key, value),
            HeadCache::Streaming(c) => c.append(pool, key, value),
        }
    }

    /// True when appending the next token must allocate a fresh pool page
    /// (transiently, for streaming heads that evict after allocating).
    pub fn needs_page_for_next_append(&self, pool: &PagePool) -> bool {
        match self {
            HeadCache::Dense(c) => c.needs_page_for_next_append(pool),
            HeadCache::Streaming(c) => c.needs_page_for_next_append(pool),
        }
    }

    /// Frees all pages.
    pub fn release(&mut self, pool: &mut PagePool) {
        match self {
            HeadCache::Dense(c) => c.release(pool),
            HeadCache::Streaming(c) => c.release(pool),
        }
    }

    /// Takes one additional reference on every page this head retains (prefix
    /// sharing).
    pub fn retain_all(&self, pool: &mut PagePool) {
        match self {
            HeadCache::Dense(c) => c.retain_all(pool),
            HeadCache::Streaming(c) => c.retain_all(pool),
        }
    }

    /// Number of pool pages this head currently references.
    pub fn resident_pages(&self) -> usize {
        match self {
            HeadCache::Dense(c) => c.num_pages(),
            HeadCache::Streaming(c) => c.resident_pages(),
        }
    }

    /// True when this head references at least one page that no other owner
    /// shares (releasing it would free physical pages).
    pub fn holds_sole_reference(&self, pool: &PagePool) -> bool {
        match self {
            HeadCache::Dense(c) => c.holds_sole_reference(pool),
            HeadCache::Streaming(c) => c.holds_sole_reference(pool),
        }
    }

    /// Demotes every sole-owned hot page this head retains (swap-out).
    /// Returns `(pages moved, token-units moved)`.
    pub fn demote_all(&self, pool: &mut PagePool) -> (u64, u64) {
        match self {
            HeadCache::Dense(c) => c.demote_all(pool),
            HeadCache::Streaming(c) => c.demote_all(pool),
        }
    }

    /// Promotes every cold page this head retains (swap-in). `None` if the hot
    /// tier filled up mid-way; reserve [`HeadCache::cold_pages`] slots first.
    pub fn promote_all(&self, pool: &mut PagePool) -> Option<(u64, u64)> {
        match self {
            HeadCache::Dense(c) => c.promote_all(pool),
            HeadCache::Streaming(c) => c.promote_all(pool),
        }
    }

    /// Makes every page this head retains kernel-readable *now* (see
    /// [`PagePool::ensure_hot`]). Returns `(pages moved, token-units issued,
    /// token-units unhidden)`, or `None` if the hot tier filled up mid-way.
    pub fn ensure_resident(&self, pool: &mut PagePool) -> Option<(u64, u64, u64)> {
        match self {
            HeadCache::Dense(c) => c.ensure_resident(pool),
            HeadCache::Streaming(c) => c.ensure_resident(pool),
        }
    }

    /// Pages this head retains that currently sit in the cold tier.
    pub fn cold_pages(&self, pool: &PagePool) -> usize {
        match self {
            HeadCache::Dense(c) => c.cold_pages(pool),
            HeadCache::Streaming(c) => c.cold_pages(pool),
        }
    }

    /// Hot slots a swap-in of this head must newly claim (see
    /// [`DenseHeadCache::swap_in_demand`]).
    pub fn swap_in_demand(&self, pool: &PagePool) -> usize {
        match self {
            HeadCache::Dense(c) => c.swap_in_demand(pool),
            HeadCache::Streaming(c) => c.swap_in_demand(pool),
        }
    }

    /// Pages this head retains that are both sole-owned and hot — the pages a
    /// swap-out would actually move.
    pub fn sole_owned_hot_pages(&self, pool: &PagePool) -> usize {
        match self {
            HeadCache::Dense(c) => c.sole_owned_hot_pages(pool),
            HeadCache::Streaming(c) => c.sole_owned_hot_pages(pool),
        }
    }

    /// Modeled ledger units to bring every page this head retains hot again,
    /// by tier (see [`DenseHeadCache::promote_back_cost_units`]).
    pub fn promote_back_cost_units(&self, pool: &PagePool) -> u64 {
        match self {
            HeadCache::Dense(c) => c.promote_back_cost_units(pool),
            HeadCache::Streaming(c) => c.promote_back_cost_units(pool),
        }
    }

    /// Borrow the dense cache.
    ///
    /// # Panics
    ///
    /// Panics if this is a streaming head.
    pub fn as_dense(&self) -> &DenseHeadCache {
        match self {
            HeadCache::Dense(c) => c,
            HeadCache::Streaming(_) => panic!("expected dense head"),
        }
    }

    /// Borrow the streaming cache.
    ///
    /// # Panics
    ///
    /// Panics if this is a dense head.
    pub fn as_streaming(&self) -> &StreamingHeadCache {
        match self {
            HeadCache::Streaming(c) => c,
            HeadCache::Dense(_) => panic!("expected streaming head"),
        }
    }
}

/// One transformer layer's KV cache: one [`HeadCache`] per KV head, partitioned into
/// dense and streaming heads by the static (offline) classification of §3.3.
///
/// # Example
///
/// ```
/// use lserve_kvcache::{LayerKvCache, PagePool, PagingConfig, StreamingWindow};
/// use lserve_quant::KvPrecision;
///
/// let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
/// let mut pool = PagePool::new(cfg, 64, 8);
/// // Head 0 dense, head 1 streaming.
/// let cache = LayerKvCache::new(&[false, true], StreamingWindow::paper_default());
/// assert!(!cache.head(0).is_streaming());
/// assert!(cache.head(1).is_streaming());
/// # let _ = pool;
/// ```
#[derive(Debug, Clone)]
pub struct LayerKvCache {
    heads: Vec<HeadCache>,
}

impl LayerKvCache {
    /// Creates the layer cache from a per-KV-head streaming mask (`true` = streaming
    /// head) and the streaming window geometry.
    pub fn new(streaming_mask: &[bool], window: StreamingWindow) -> Self {
        let heads = streaming_mask
            .iter()
            .map(|&s| {
                if s {
                    HeadCache::Streaming(StreamingHeadCache::new(window))
                } else {
                    HeadCache::Dense(DenseHeadCache::new())
                }
            })
            .collect();
        Self { heads }
    }

    /// Number of KV heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Access one head's cache.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of bounds.
    pub fn head(&self, h: usize) -> &HeadCache {
        &self.heads[h]
    }

    /// Mutable access to one head's cache.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of bounds.
    pub fn head_mut(&mut self, h: usize) -> &mut HeadCache {
        &mut self.heads[h]
    }

    /// Appends one token's `(key, value)` rows for all heads at once.
    ///
    /// `keys`/`values` are row-major `(num_heads x head_dim)`. Returns `false` if any
    /// head ran out of pool space (heads appended before the failure keep their row;
    /// callers treat this as a fatal out-of-memory for the sequence).
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes do not match `num_heads * head_dim`.
    pub fn append_token(
        &mut self,
        pool: &mut PagePool,
        keys: &[f32],
        values: &[f32],
        head_dim: usize,
    ) -> bool {
        assert_eq!(
            keys.len(),
            self.heads.len() * head_dim,
            "keys size mismatch"
        );
        assert_eq!(
            values.len(),
            self.heads.len() * head_dim,
            "values size mismatch"
        );
        for (h, cache) in self.heads.iter_mut().enumerate() {
            let k = &keys[h * head_dim..(h + 1) * head_dim];
            let v = &values[h * head_dim..(h + 1) * head_dim];
            if !cache.append(pool, k, v) {
                return false;
            }
        }
        true
    }

    /// Exact number of fresh pool pages appending one token to every head will
    /// allocate (counting streaming heads' transient evict-after-alloc demand).
    ///
    /// A scheduler that reserves this many free pages before a decode step is
    /// guaranteed the step cannot fail mid-layer with an out-of-pages error.
    pub fn pages_needed_for_next_token(&self, pool: &PagePool) -> usize {
        self.heads
            .iter()
            .filter(|h| h.needs_page_for_next_append(pool))
            .count()
    }

    /// Frees all pages of all heads.
    pub fn release(&mut self, pool: &mut PagePool) {
        for h in &mut self.heads {
            h.release(pool);
        }
    }

    /// Takes one additional reference on every page of every head (prefix
    /// sharing: the caller co-owns the layer's pages and must `release` its copy).
    pub fn retain_all(&self, pool: &mut PagePool) {
        for h in &self.heads {
            h.retain_all(pool);
        }
    }

    /// Total pool pages this layer currently references, across all heads.
    pub fn resident_pages(&self) -> usize {
        self.heads.iter().map(HeadCache::resident_pages).sum()
    }

    /// True when any head references a page no other owner shares.
    pub fn holds_sole_reference(&self, pool: &PagePool) -> bool {
        self.heads.iter().any(|h| h.holds_sole_reference(pool))
    }

    /// Demotes every sole-owned hot page of every head (full-layer swap-out).
    /// Returns `(pages moved, token-units moved)`.
    pub fn demote_all(&self, pool: &mut PagePool) -> (u64, u64) {
        self.heads.iter().fold((0, 0), |(p, u), h| {
            let (hp, hu) = h.demote_all(pool);
            (p + hp, u + hu)
        })
    }

    /// Promotes every cold page of every head (full-layer swap-in). `None` if
    /// the hot tier filled up mid-way; reserve [`LayerKvCache::cold_pages`]
    /// free slots first.
    pub fn promote_all(&self, pool: &mut PagePool) -> Option<(u64, u64)> {
        let mut pages = 0;
        let mut units = 0;
        for h in &self.heads {
            let (hp, hu) = h.promote_all(pool)?;
            pages += hp;
            units += hu;
        }
        Some((pages, units))
    }

    /// Makes every page of every head kernel-readable *now* (see
    /// [`PagePool::ensure_hot`]). Returns `(pages moved, token-units issued,
    /// token-units unhidden)`, or `None` if the hot tier filled up mid-way.
    pub fn ensure_resident(&self, pool: &mut PagePool) -> Option<(u64, u64, u64)> {
        let mut pages = 0;
        let mut units = 0;
        let mut unhidden = 0;
        for h in &self.heads {
            let (hp, hu, huh) = h.ensure_resident(pool)?;
            pages += hp;
            units += hu;
            unhidden += huh;
        }
        Some((pages, units, unhidden))
    }

    /// Pages of this layer currently in the cold tier, across all heads.
    pub fn cold_pages(&self, pool: &PagePool) -> usize {
        self.heads.iter().map(|h| h.cold_pages(pool)).sum()
    }

    /// Hot slots a swap-in of this layer must newly claim, across all heads
    /// (see [`DenseHeadCache::swap_in_demand`]).
    pub fn swap_in_demand(&self, pool: &PagePool) -> usize {
        self.heads.iter().map(|h| h.swap_in_demand(pool)).sum()
    }

    /// Pages of this layer that are both sole-owned and hot, across all heads —
    /// the exact page traffic a full-layer swap-out would generate.
    pub fn sole_owned_hot_pages(&self, pool: &PagePool) -> usize {
        self.heads
            .iter()
            .map(|h| h.sole_owned_hot_pages(pool))
            .sum()
    }

    /// Modeled ledger units to bring every page of this layer hot again, by
    /// tier, across all heads (see
    /// [`DenseHeadCache::promote_back_cost_units`]).
    pub fn promote_back_cost_units(&self, pool: &PagePool) -> u64 {
        self.heads
            .iter()
            .map(|h| h.promote_back_cost_units(pool))
            .sum()
    }

    /// Tokens stored (identical across heads by construction; reported from head 0).
    pub fn tokens(&self) -> usize {
        self.heads.first().map(HeadCache::tokens).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PagingConfig;
    use lserve_quant::KvPrecision;

    fn setup() -> (PagePool, LayerKvCache) {
        let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
        let pool = PagePool::new(cfg, 256, 2);
        let cache = LayerKvCache::new(&[false, true, false, true], StreamingWindow::new(1, 2));
        (pool, cache)
    }

    #[test]
    fn append_token_feeds_every_head() {
        let (mut pool, mut c) = setup();
        let keys = vec![1.0f32; 8];
        let values = vec![2.0f32; 8];
        assert!(c.append_token(&mut pool, &keys, &values, 2));
        assert_eq!(c.tokens(), 1);
        for h in 0..4 {
            assert_eq!(c.head(h).tokens(), 1);
        }
    }

    #[test]
    fn memory_asymmetry_between_head_kinds() {
        let (mut pool, mut c) = setup();
        let keys = vec![0.5f32; 8];
        let values = vec![0.5f32; 8];
        for _ in 0..200 {
            assert!(c.append_token(&mut pool, &keys, &values, 2));
        }
        // Dense heads: ceil(200/4)=50 pages each. Streaming: <= 3 pages each.
        let dense_pages = c.head(0).as_dense().num_pages();
        let stream_pages = c.head(1).as_streaming().resident_pages();
        assert_eq!(dense_pages, 50);
        assert!(stream_pages <= 3);
        assert!(pool.in_use() <= 2 * 50 + 2 * 3);
    }

    #[test]
    fn release_empties_pool() {
        let (mut pool, mut c) = setup();
        let keys = vec![0.0f32; 8];
        let values = vec![0.0f32; 8];
        for _ in 0..30 {
            c.append_token(&mut pool, &keys, &values, 2);
        }
        c.release(&mut pool);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "expected dense head")]
    fn wrong_kind_access_panics() {
        let (_, c) = setup();
        let _ = c.head(1).as_dense();
    }
}
