//! Two-way paged KV cache with hierarchical page statistics.
//!
//! This crate is the serving-memory substrate of the LServe reproduction (paper §2.1
//! "Paged Attention" and §3.2 "LServe System Overview"):
//!
//! * [`PagePool`] — a hierarchical pool of physical KV pages with a free list
//!   and reference counts: a capacity-bounded **hot tier** playing the role of
//!   GPU device memory (the only tier attention kernels may read), a
//!   **cold tier** modeling host memory (optionally bounded via
//!   [`TierConfig`]), and below it an optional modeled **nvme tier** an order
//!   of magnitude slower per hop ([`NVME_TRANSFER_SPEEDUP`]). Explicit
//!   [`PagePool::demote`] / [`PagePool::promote`] / [`PagePool::spill`]
//!   migrations carry a deterministic modeled transfer cost
//!   ([`transfer_cost_tokens`]). Sequences hold *page tables*
//!   (vectors of [`PageId`], stable across migrations) and kernels access pages
//!   through the pool, mirroring PagedAttention's indirect addressing.
//! * [`KvPage`] — one physical page of up to `N_P` tokens for a single KV head,
//!   stored at a configurable precision (FP16/INT8/INT4, scales and zeros carried per
//!   token row exactly like QServe's layout) plus the per-*logical*-page channelwise
//!   key min/max statistics (`K_stats` in Figure 5) that the dynamic page selector
//!   consumes.
//! * [`DenseHeadCache`] — the page table of a dense (retrieval) head: full history,
//!   every page carrying `K_stats`.
//! * [`StreamingHeadCache`] — the page table of a streaming head: only sink pages and
//!   a ring of local pages are retained ("Only Sink & Local Pages" in Figure 5);
//!   evicted pages return to the pool, which is where LServe's memory saving on
//!   streaming heads comes from.
//! * [`LayerKvCache`] — the per-layer two-way composition of the above, one entry per
//!   KV head, split by the static head classification.
//!
//! Hierarchical paging (paper §3.5.2) lives here as data: each physical page of
//! `N_P` tokens records min/max key statistics per logical page of `N_L` tokens
//! (`N_P = g · N_L`), so the selector can score at fine granularity while memory
//! stays coarse-grained.

pub mod config;
pub mod copy_engine;
pub mod dense;
pub mod layer;
pub mod pool;
pub mod stats;
pub mod streaming;

pub use config::PagingConfig;
pub use copy_engine::{
    migration_from_env, CopyEngine, Hop, MigrationDir, MigrationMode, MigrationStats,
    COPY_CHANNEL_DEPTH,
};
pub use dense::DenseHeadCache;
pub use layer::{HeadCache, LayerKvCache};
pub use pool::{tier_config_from_env, KvPage, PageId, PagePool, Residency, TierConfig};
pub use stats::{
    nvme_ledger_units, transfer_cost_tokens, LogicalPageStats, TierStats, HOST_TRANSFER_SPEEDUP,
    NVME_TRANSFER_SPEEDUP,
};
pub use streaming::{StreamingHeadCache, StreamingWindow};
