//! Physical KV pages and the hierarchical (hot device / bounded host /
//! modeled NVMe) page pool.

use lserve_quant::{quantize_group, KvPrecision, QuantParams};
use lserve_trace::{lane, Tracer};

use crate::{
    config::PagingConfig,
    copy_engine::{CopyEngine, Hop, MigrationDir, MigrationMode, MigrationStats},
    stats::{nvme_ledger_units, LogicalPageStats, TierStats},
};

/// Which memory tier a live page currently resides in.
///
/// Only **hot** (device-resident) pages may be read by attention kernels; cold
/// pages model KV data offloaded to host memory, where only the page's
/// *metadata* (key statistics for selection, length, refcount) remains cheaply
/// accessible; **nvme** pages sit one modeled hop further down, behind a link
/// an order of magnitude slower (see
/// [`NVME_TRANSFER_SPEEDUP`](crate::NVME_TRANSFER_SPEEDUP)). Migrations
/// between tiers are explicit ([`PagePool::demote`] / [`PagePool::promote`] /
/// [`PagePool::spill`]) and carry a deterministic modeled transfer cost (see
/// [`crate::stats::transfer_cost_tokens`]).
///
/// Under [`MigrationMode::Async`] a page can additionally be **in flight** on
/// the modeled copy engine: `Migrating(ToCold)` pages still occupy their hot
/// slot (and stay kernel-readable — the device copy is the source of the
/// outbound DMA) until the transfer lands, while `Migrating(ToHot)` pages hold
/// a hot slot from issue but become readable only when the inbound transfer
/// lands (or is demand-forced). The NVMe hop mirrors this one tier down:
/// `MigratingNvme(ToCold)` (a spill) occupies its host slot until landing,
/// `MigratingNvme(ToHot)` (a recall) claims a host slot from issue.
/// [`MigrationMode::Sync`] never produces an in-flight state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Device-resident: attention kernels may read the page.
    Hot,
    /// Offloaded to modeled host memory: metadata readable, KV data must be
    /// promoted back before a kernel may touch it.
    Cold,
    /// In flight on the host hop of the copy engine (async mode only).
    Migrating(MigrationDir),
    /// Spilled to the modeled NVMe tier below the host: promotion back to the
    /// hot tier pays the recall *and* the host hop.
    Nvme,
    /// In flight on the nvme hop of the copy engine (async mode only):
    /// `ToCold` is a spill draining out of the host, `ToHot` a recall filling
    /// a host slot.
    MigratingNvme(MigrationDir),
}

/// Capacities of the tiers below the hot device tier.
///
/// The default (`host_pages == 0`, `nvme == false`) reproduces the two-tier
/// pool exactly: an unbounded host and no NVMe tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierConfig {
    /// Host (cold) tier capacity in pages; `0` means unbounded.
    pub host_pages: usize,
    /// Whether the modeled NVMe tier below the host exists. Without it a full
    /// bounded host refuses demotions, pushing the caller to its final
    /// fallback (drop-and-replay).
    pub nvme: bool,
}

/// Tier configuration from the `LSERVE_HOST_PAGES` (page count, `0`/unset =
/// unbounded) and `LSERVE_NVME` (`1`/`true`/`on` to enable) environment
/// variables.
///
/// Read on every call — deliberately *not* cached in a process-wide
/// `OnceLock` — so tests and benches can vary the knobs in-process;
/// constructors read it once and pin the result.
pub fn tier_config_from_env() -> TierConfig {
    let host_pages = std::env::var("LSERVE_HOST_PAGES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    let nvme = matches!(
        std::env::var("LSERVE_NVME")
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase()
            .as_str(),
        "1" | "true" | "on"
    );
    TierConfig { host_pages, nvme }
}

/// Opaque handle to a physical page in a [`PagePool`].
///
/// Page tables are `Vec<PageId>`; kernels resolve handles through the pool, the
/// in-memory analogue of PagedAttention's indirect addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub(crate) u32);

impl PageId {
    /// The raw pool index (useful for logging and tests).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One physical KV page: up to `N_P` tokens of keys and values for a single KV head,
/// stored at the configured precision, plus per-logical-page key statistics.
///
/// Quantized pages store codes + per-token-row scale/zero (QServe layout); reads
/// dequantize, so the rounding error a real INT4/INT8 kernel would see is reproduced
/// faithfully. Key statistics are computed from the *stored* (dequantized)
/// representation, matching what the device kernel could reconstruct.
#[derive(Debug, Clone)]
pub struct KvPage {
    config: PagingConfig,
    head_dim: usize,
    len: usize,
    // FP16 path: plain rows. Quantized path: codes packed one byte per element for
    // INT8, two per byte for INT4, plus per-row params.
    keys_f: Vec<f32>,
    values_f: Vec<f32>,
    keys_q: Vec<u8>,
    values_q: Vec<u8>,
    key_params: Vec<QuantParams>,
    value_params: Vec<QuantParams>,
    stats: Vec<LogicalPageStats>,
}

impl KvPage {
    fn new(config: PagingConfig, head_dim: usize) -> Self {
        let logical = config.logical_per_physical();
        Self {
            config,
            head_dim,
            len: 0,
            keys_f: Vec::new(),
            values_f: Vec::new(),
            keys_q: Vec::new(),
            values_q: Vec::new(),
            key_params: Vec::new(),
            value_params: Vec::new(),
            stats: (0..logical)
                .map(|_| LogicalPageStats::new(head_dim))
                .collect(),
        }
    }

    /// Tokens currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no token has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the page holds `N_P` tokens.
    pub fn is_full(&self) -> bool {
        self.len == self.config.physical_page_size()
    }

    /// Key/value feature dimension.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Appends one `(key, value)` token row.
    ///
    /// # Panics
    ///
    /// Panics if the page is full or the rows have the wrong dimension.
    pub fn append(&mut self, key: &[f32], value: &[f32]) {
        assert!(!self.is_full(), "append to full page");
        assert_eq!(key.len(), self.head_dim, "key dimension mismatch");
        assert_eq!(value.len(), self.head_dim, "value dimension mismatch");
        let precision = self.config.precision();
        let (stored_key, stored_value): (Vec<f32>, Vec<f32>) = if precision.is_quantized() {
            let (kc, kp) = quantize_group(key, precision);
            let (vc, vp) = quantize_group(value, precision);
            let sk: Vec<f32> = kc.iter().map(|&c| kp.zero + c as f32 * kp.scale).collect();
            let sv: Vec<f32> = vc.iter().map(|&c| vp.zero + c as f32 * vp.scale).collect();
            self.pack(&kc, true);
            self.pack(&vc, false);
            self.key_params.push(kp);
            self.value_params.push(vp);
            (sk, sv)
        } else {
            (key.to_vec(), value.to_vec())
        };
        // We keep the effective (post-quantization) rows in f32 for fast reads; the
        // packed codes exist so storage size and rounding are exactly device-like.
        self.keys_f.extend_from_slice(&stored_key);
        self.values_f.extend_from_slice(&stored_value);
        let logical_idx = self.len / self.config.logical_page_size();
        self.stats[logical_idx].update(&stored_key);
        self.len += 1;
    }

    fn pack(&mut self, codes: &[u8], is_key: bool) {
        let dst = if is_key {
            &mut self.keys_q
        } else {
            &mut self.values_q
        };
        match self.config.precision() {
            KvPrecision::Int8 => dst.extend_from_slice(codes),
            KvPrecision::Int4 => {
                for pair in codes.chunks(2) {
                    let lo = pair[0] & 0x0F;
                    let hi = if pair.len() == 2 { pair[1] & 0x0F } else { 0 };
                    dst.push(lo | (hi << 4));
                }
            }
            KvPrecision::Fp16 => {}
        }
    }

    /// The effective (dequantized) key row for token slot `t` within this page.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()`.
    #[inline]
    pub fn key_row(&self, t: usize) -> &[f32] {
        assert!(t < self.len, "token slot {t} out of bounds ({})", self.len);
        &self.keys_f[t * self.head_dim..(t + 1) * self.head_dim]
    }

    /// The effective (dequantized) value row for token slot `t` within this page.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()`.
    #[inline]
    pub fn value_row(&self, t: usize) -> &[f32] {
        assert!(t < self.len, "token slot {t} out of bounds ({})", self.len);
        &self.values_f[t * self.head_dim..(t + 1) * self.head_dim]
    }

    /// Key statistics of logical sub-page `l` (in `0..logical_per_physical()`).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn logical_stats(&self, l: usize) -> &LogicalPageStats {
        &self.stats[l]
    }

    /// All logical sub-page statistics.
    pub fn logical_stats_all(&self) -> &[LogicalPageStats] {
        &self.stats
    }

    /// Number of logical sub-pages that contain at least one token.
    pub fn occupied_logical_pages(&self) -> usize {
        self.len.div_ceil(self.config.logical_page_size())
    }

    /// Bytes this page's KV data would occupy on device (token features at the page
    /// precision plus quantization metadata), for the full page capacity — pages are
    /// allocated whole, like real device pages.
    pub fn device_bytes(&self) -> f64 {
        let p = self.config.precision();
        let n = self.config.physical_page_size() * self.head_dim * 2; // K and V
        p.bytes_for(n) + p.metadata_bytes_for(n, self.head_dim)
    }
}

/// Hierarchical pool of physical pages with free list and reference counts.
///
/// The **hot tier** plays the role of device KV memory: it is bounded by
/// `capacity` pages, allocation fails ([`None`]) when it is exhausted, and
/// freed pages are recycled. The **cold tier** models host memory — optionally
/// bounded by [`TierConfig::host_pages`] — holding pages explicitly
/// [`PagePool::demote`]d out of the hot tier until a [`PagePool::promote`]
/// brings them back. Below it, an optional **nvme tier** absorbs
/// [`PagePool::spill`]s from a full host (oldest-resident first), an order of
/// magnitude more expensive per hop. [`PageId`]s are stable across
/// migrations, so page tables held by sequences, selectors and the prefix
/// cache stay valid whichever tier a page sits in.
///
/// Reference counts support shared prefixes (several sequences pointing at the
/// same pages); a page referenced by more than one owner is never demoted
/// ([`PagePool::demote`] refuses), which keeps the copy-on-write discipline of
/// prefix sharing intact: a co-owned page is always hot for whoever reads it.
///
/// `in_use` / `free_pages` / `capacity` keep their device semantics (hot pages
/// only), so admission and reservation logic written against the single-tier
/// pool carries over unchanged; [`PagePool::cold_in_use`] and
/// [`PagePool::tier_stats`] expose the host side.
///
/// # Example
///
/// ```
/// use lserve_kvcache::{PagePool, PagingConfig};
/// use lserve_quant::KvPrecision;
///
/// let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
/// let mut pool = PagePool::new(cfg, 2, 8);
/// let a = pool.allocate().unwrap();
/// let b = pool.allocate().unwrap();
/// assert!(pool.allocate().is_none()); // hot capacity 2
/// // Demoting a page frees hot capacity without losing its contents.
/// pool.demote(a).unwrap();
/// let c = pool.allocate().unwrap();
/// assert_eq!(pool.cold_in_use(), 1);
/// pool.free(b);
/// assert!(pool.promote(a).is_some());
/// # let _ = c;
/// ```
#[derive(Debug, Clone)]
pub struct PagePool {
    config: PagingConfig,
    head_dim: usize,
    pages: Vec<Option<KvPage>>,
    refcounts: Vec<u32>,
    residency: Vec<Residency>,
    /// Recycled slot indices (fully-freed pages of either tier).
    free: Vec<PageId>,
    hot_capacity: usize,
    hot_in_use: usize,
    cold_in_use: usize,
    nvme_in_use: usize,
    peak_in_use: usize,
    forks: u64,
    tier: TierStats,
    tiers: TierConfig,
    /// FIFO spill order of the bounded host: per-slot stamp of when the page
    /// last became host-resident, from the monotonic `host_clock`.
    host_stamp: Vec<u64>,
    host_clock: u64,
    mode: MigrationMode,
    engine: CopyEngine,
    mig: MigrationStats,
    /// Per-slot flag: the in-flight (or landed-but-untouched) promotion was
    /// speculative, issued by the prefetcher. Cleared on the first demand
    /// touch (a hit) or when the page is demoted/freed first (wasted).
    prefetched: Vec<bool>,
    /// Trace handle for copy-engine events; disabled (free) by default.
    /// Riding on the pool puts transfer events in reach of everything that
    /// moves pages — scheduler, executor, selector hooks — without new
    /// plumbing through their signatures.
    tracer: Tracer,
}

impl PagePool {
    /// Creates a pool whose hot (device) tier holds `capacity` pages for heads
    /// of dimension `head_dim`. The cold (host) tier starts empty and is
    /// unbounded. Migrations complete synchronously ([`MigrationMode::Sync`]);
    /// see [`PagePool::new_with_migration`] for the overlapped engine.
    pub fn new(config: PagingConfig, capacity: usize, head_dim: usize) -> Self {
        Self::new_with_migration(config, capacity, head_dim, MigrationMode::Sync)
    }

    /// Creates a pool with an explicit [`MigrationMode`]. Under
    /// [`MigrationMode::Async`] demotions and promotions drain through the
    /// modeled copy engine (see [`crate::copy_engine`]) as compute feeds
    /// [`PagePool::advance_transfer_units`]; outputs of anything built on the
    /// pool are bit-identical across modes — only the latency accounting and
    /// slot timing differ.
    pub fn new_with_migration(
        config: PagingConfig,
        capacity: usize,
        head_dim: usize,
        mode: MigrationMode,
    ) -> Self {
        Self::new_with_tiers(config, capacity, head_dim, mode, TierConfig::default())
    }

    /// Creates a pool with an explicit [`MigrationMode`] and [`TierConfig`].
    /// A bounded host ([`TierConfig::host_pages`] above zero) spills its
    /// oldest-resident pages to the NVMe tier under pressure when
    /// [`TierConfig::nvme`] is on, and refuses demotions otherwise.
    pub fn new_with_tiers(
        config: PagingConfig,
        capacity: usize,
        head_dim: usize,
        mode: MigrationMode,
        tiers: TierConfig,
    ) -> Self {
        Self {
            config,
            head_dim,
            pages: Vec::new(),
            refcounts: Vec::new(),
            residency: Vec::new(),
            free: Vec::new(),
            hot_capacity: capacity,
            hot_in_use: 0,
            cold_in_use: 0,
            nvme_in_use: 0,
            peak_in_use: 0,
            forks: 0,
            tier: TierStats::default(),
            tiers,
            host_stamp: Vec::new(),
            host_clock: 0,
            mode,
            engine: CopyEngine::default(),
            mig: MigrationStats::default(),
            prefetched: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// The migration mode this pool was constructed with.
    pub fn migration_mode(&self) -> MigrationMode {
        self.mode
    }

    /// Attaches a trace handle; tier migrations emit copy-engine events on it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The pool's trace handle (disabled unless [`PagePool::set_tracer`] was
    /// called). Kernel- and selector-level code reaches the shared tracer
    /// through here.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Emits one copy-engine instant for page `id` on the host hop's lane.
    fn trace_copy(&self, name: &'static str, dir: MigrationDir, id: PageId, units: u64) {
        self.trace_copy_hop(name, Hop::Host, dir, id, units);
    }

    /// Emits one copy-engine instant for page `id` on the channel's lane:
    /// tid 0 = demote, 1 = promote, 2 = spill, 3 = recall.
    fn trace_copy_hop(
        &self,
        name: &'static str,
        hop: Hop,
        dir: MigrationDir,
        id: PageId,
        units: u64,
    ) {
        if self.tracer.is_enabled() {
            let tid = match (hop, dir) {
                (Hop::Host, MigrationDir::ToCold) => 0,
                (Hop::Host, MigrationDir::ToHot) => 1,
                (Hop::Nvme, MigrationDir::ToCold) => 2,
                (Hop::Nvme, MigrationDir::ToHot) => 3,
            };
            self.tracer.instant(
                name,
                "copy",
                lane::COPY,
                tid,
                &[("page", id.index() as u64), ("units", units)],
            );
        }
    }

    /// Lifetime copy-engine counters (prefetch outcomes, hidden vs unhidden
    /// transfer units). In [`MigrationMode::Sync`] every migrated unit counts
    /// as unhidden, so [`MigrationStats::migration_stall_tokens`] is
    /// comparable across modes.
    pub fn migration_stats(&self) -> MigrationStats {
        self.mig
    }

    /// Transfers currently in flight on the copy engine (all four channels).
    pub fn in_flight_transfers(&self) -> usize {
        [Hop::Host, Hop::Nvme]
            .into_iter()
            .flat_map(|hop| {
                [MigrationDir::ToCold, MigrationDir::ToHot]
                    .into_iter()
                    .map(move |dir| self.engine.in_flight_hop(hop, dir))
            })
            .sum()
    }

    /// Residency state of a live page.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn residency(&self, id: PageId) -> Residency {
        assert!(
            self.pages[id.index()].is_some(),
            "residency query on unallocated page {id:?}"
        );
        self.residency[id.index()]
    }

    /// The paging configuration pages are created with.
    pub fn config(&self) -> PagingConfig {
        self.config
    }

    /// Hot-tier (device) page slots.
    pub fn capacity(&self) -> usize {
        self.hot_capacity
    }

    /// Hot (device-resident) pages currently allocated.
    pub fn in_use(&self) -> usize {
        self.hot_in_use
    }

    /// Cold (host-resident) pages currently allocated, including pages in
    /// flight on the nvme hop (both directions claim a host slot; see
    /// [`PagePool::host_used`] for the capacity view).
    pub fn cold_in_use(&self) -> usize {
        self.cold_in_use
    }

    /// NVMe-resident pages currently allocated.
    pub fn nvme_in_use(&self) -> usize {
        self.nvme_in_use
    }

    /// The tier configuration below the hot tier.
    pub fn tier_config(&self) -> TierConfig {
        self.tiers
    }

    /// Host-tier slots the capacity bound must count: cold-resident pages,
    /// plus in-flight demotions (they land in the host), minus in-flight
    /// spills (their host slot is committed to the nvme tier the moment the
    /// spill is issued — this is what lets an async spill relieve host
    /// pressure without being demand-forced).
    pub fn host_used(&self) -> usize {
        self.cold_in_use + self.engine.in_flight_hop(Hop::Host, MigrationDir::ToCold)
            - self.engine.in_flight_hop(Hop::Nvme, MigrationDir::ToCold)
    }

    /// True when the bounded host can still take one more page (always true
    /// for an unbounded host).
    pub fn host_has_room(&self) -> bool {
        self.tiers.host_pages == 0 || self.host_used() < self.tiers.host_pages
    }

    /// Live pages across all tiers.
    pub fn total_in_use(&self) -> usize {
        self.hot_in_use + self.cold_in_use + self.nvme_in_use
    }

    /// Hot pages currently available for allocation. In-flight demotions
    /// count as available: their slots are reclaimable on demand
    /// (allocation force-completes the oldest outbound transfer, charging its
    /// remainder as unhidden stall).
    pub fn free_pages(&self) -> usize {
        self.hot_capacity - self.hot_in_use + self.engine.in_flight(MigrationDir::ToCold)
    }

    /// High-water mark of hot pages in use.
    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use
    }

    /// Lifetime tier-migration counters (pages and token-units moved each way).
    pub fn tier_stats(&self) -> TierStats {
        self.tier
    }

    /// Grabs a recycled slot or grows the slot table by one.
    fn take_slot(&mut self) -> PageId {
        match self.free.pop() {
            Some(id) => id,
            None => {
                let id = PageId(self.pages.len() as u32);
                self.pages.push(None);
                self.refcounts.push(0);
                self.residency.push(Residency::Hot);
                self.prefetched.push(false);
                self.host_stamp.push(0);
                id
            }
        }
    }

    /// Marks slot `idx` as freshly host-resident for the FIFO spill order.
    fn stamp_host(&mut self, idx: usize) {
        self.host_clock += 1;
        self.host_stamp[idx] = self.host_clock;
    }

    /// Applies the residency flip of a landed host-hop transfer. Slot
    /// accounting for promotions happened at issue; demotions hand their hot
    /// slot over here.
    fn land(&mut self, dir: MigrationDir, id: PageId) {
        self.land_hop(Hop::Host, dir, id);
    }

    /// Applies the residency flip of a landed transfer on either hop.
    fn land_hop(&mut self, hop: Hop, dir: MigrationDir, id: PageId) {
        let idx = id.index();
        self.trace_copy_hop("land", hop, dir, id, 0);
        match hop {
            Hop::Host => {
                debug_assert_eq!(self.residency[idx], Residency::Migrating(dir));
                match dir {
                    MigrationDir::ToCold => {
                        self.residency[idx] = Residency::Cold;
                        self.hot_in_use -= 1;
                        self.cold_in_use += 1;
                        self.stamp_host(idx);
                    }
                    MigrationDir::ToHot => self.residency[idx] = Residency::Hot,
                }
            }
            Hop::Nvme => {
                debug_assert_eq!(self.residency[idx], Residency::MigratingNvme(dir));
                match dir {
                    // A landed spill hands its host slot over to the nvme tier.
                    MigrationDir::ToCold => {
                        self.residency[idx] = Residency::Nvme;
                        self.cold_in_use -= 1;
                        self.nvme_in_use += 1;
                    }
                    // A landed recall becomes an ordinary host-resident page.
                    MigrationDir::ToHot => {
                        self.residency[idx] = Residency::Cold;
                        self.stamp_host(idx);
                    }
                }
            }
        }
    }

    /// Force-completes the oldest in-flight host-hop transfer in `dir`,
    /// charging its remainder as unhidden stall. Returns `false` when the
    /// queue is empty.
    fn force_oldest(&mut self, dir: MigrationDir) -> bool {
        self.force_oldest_hop(Hop::Host, dir)
    }

    /// Force-completes the oldest in-flight transfer on `hop` in `dir`.
    fn force_oldest_hop(&mut self, hop: Hop, dir: MigrationDir) -> bool {
        let Some((page, remaining, _prefetch)) = self.engine.force_head_hop(hop, dir) else {
            return false;
        };
        self.trace_copy_hop("force", hop, dir, page, remaining);
        self.mig.unhidden_token_units += remaining;
        self.mig.forced_completions += 1;
        self.land_hop(hop, dir, page);
        true
    }

    /// Force-completes the *cheapest* in-flight outbound transfer (fewest
    /// remaining units — the minimal forced-unhidden charge for one hot
    /// slot), charging its remainder as unhidden stall. Returns `false` when
    /// the queue is empty.
    fn force_cheapest_outbound(&mut self) -> bool {
        let Some((page, remaining, _prefetch)) = self.engine.force_cheapest(MigrationDir::ToCold)
        else {
            return false;
        };
        self.trace_copy("force", MigrationDir::ToCold, page, remaining);
        self.mig.unhidden_token_units += remaining;
        self.mig.forced_completions += 1;
        self.land(MigrationDir::ToCold, page);
        true
    }

    /// Frees one hot slot by force-completing outbound transfers, cheapest
    /// (fewest remaining units) first — the oldest transfer may have been
    /// issued large while a younger one is nearly drained, and any landed
    /// demotion frees the same one slot. Returns `false` when the hot tier is
    /// genuinely full (nothing reclaimable).
    fn reclaim_hot_slot(&mut self) -> bool {
        while self.hot_in_use >= self.hot_capacity {
            if !self.force_cheapest_outbound() {
                return false;
            }
        }
        true
    }

    /// Frees one bounded-host slot by spilling the oldest host-resident page
    /// to the nvme tier. Returns `false` when the host is full and no spill
    /// can relieve it (no nvme tier, or nothing spillable) — the caller's
    /// demotion must fail, leaving drop-and-replay as the fallback. Always
    /// `true` for an unbounded host.
    fn reclaim_host_slot(&mut self) -> bool {
        if self.tiers.host_pages == 0 {
            return true;
        }
        while !self.host_has_room() {
            if !self.tiers.nvme || !self.spill_oldest_cold() {
                return false;
            }
        }
        true
    }

    /// Spills the oldest (FIFO by host-residency stamp, page index on a tie)
    /// cold page to the nvme tier. Returns `false` when no page is
    /// `Residency::Cold`.
    fn spill_oldest_cold(&mut self) -> bool {
        let victim = self
            .residency
            .iter()
            .enumerate()
            .filter(|&(idx, r)| *r == Residency::Cold && self.pages[idx].is_some())
            .min_by_key(|&(idx, _)| (self.host_stamp[idx], idx))
            .map(|(idx, _)| PageId(idx as u32));
        match victim {
            Some(id) => self.spill(id).is_some(),
            None => false,
        }
    }

    /// Records a demand touch on a prefetched page (the prefetch paid off).
    fn touch_prefetched(&mut self, idx: usize) {
        if self.prefetched[idx] {
            self.prefetched[idx] = false;
            self.mig.prefetch_hits += 1;
        }
    }

    /// Records a prefetched page leaving before any demand touch.
    fn waste_prefetched(&mut self, idx: usize) {
        if self.prefetched[idx] {
            self.prefetched[idx] = false;
            self.mig.prefetch_wasted += 1;
        }
    }

    /// Allocates a fresh empty hot page, or `None` if the hot tier is full
    /// (after reclaiming any in-flight demotions' slots in async mode).
    pub fn allocate(&mut self) -> Option<PageId> {
        if !self.reclaim_hot_slot() {
            return None;
        }
        let id = self.take_slot();
        self.pages[id.index()] = Some(KvPage::new(self.config, self.head_dim));
        self.refcounts[id.index()] = 1;
        self.residency[id.index()] = Residency::Hot;
        self.prefetched[id.index()] = false;
        self.hot_in_use += 1;
        self.peak_in_use = self.peak_in_use.max(self.hot_in_use);
        Some(id)
    }

    /// Increments the reference count of a live page (prefix sharing).
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn retain(&mut self, id: PageId) {
        assert!(
            self.pages[id.index()].is_some(),
            "retain of free page {id:?}"
        );
        self.refcounts[id.index()] += 1;
    }

    /// Decrements the reference count, recycling the page (from whichever tier
    /// it resides in) when it reaches zero.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn free(&mut self, id: PageId) {
        let idx = id.index();
        assert!(self.pages[idx].is_some(), "free of unallocated page {id:?}");
        self.refcounts[idx] -= 1;
        if self.refcounts[idx] == 0 {
            self.waste_prefetched(idx);
            self.pages[idx] = None;
            match self.residency[idx] {
                Residency::Hot => self.hot_in_use -= 1,
                Residency::Cold => self.cold_in_use -= 1,
                Residency::Nvme => self.nvme_in_use -= 1,
                // An in-flight transfer of a dying page is cancelled, not
                // landed: its slot accounting is still on the hot side in
                // both directions (see `land`).
                Residency::Migrating(dir) => {
                    let (remaining, _) = self
                        .engine
                        .cancel(dir, id)
                        .expect("migrating page must be in flight");
                    self.trace_copy("cancel", dir, id, remaining);
                    self.mig.cancelled_token_units += remaining;
                    self.hot_in_use -= 1;
                }
                // Nvme-hop in-flight pages count as host-resident in both
                // directions (see `land_hop`).
                Residency::MigratingNvme(dir) => {
                    let (remaining, _) = self
                        .engine
                        .cancel_hop(Hop::Nvme, dir, id)
                        .expect("migrating page must be in flight");
                    self.trace_copy_hop("cancel", Hop::Nvme, dir, id, remaining);
                    self.mig.cancelled_token_units += remaining;
                    self.cold_in_use -= 1;
                }
            }
            self.residency[idx] = Residency::Hot;
            self.free.push(id);
        }
    }

    /// True when the page is kernel-readable on the device: `Hot`, or still
    /// draining out (`Migrating(ToCold)` — the device copy is the transfer
    /// source and remains valid until the slot is handed over). An inbound
    /// `Migrating(ToHot)` page is *not* readable until its transfer lands.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn is_hot(&self, id: PageId) -> bool {
        assert!(
            self.pages[id.index()].is_some(),
            "residency query on unallocated page {id:?}"
        );
        matches!(
            self.residency[id.index()],
            Residency::Hot | Residency::Migrating(MigrationDir::ToCold)
        )
    }

    /// Moves a hot page to the cold (host) tier, freeing one hot slot without
    /// losing the page's contents. Returns the modeled transfer cost in
    /// token-units (see [`crate::stats::transfer_cost_tokens`]).
    ///
    /// Returns `None` — and leaves the page untouched — when the page is
    /// already below the hot tier, when it is **co-owned** (refcount above 1):
    /// a page shared with the prefix cache or another sequence must stay hot
    /// for its other readers, exactly as copy-on-write forbids appending into
    /// it — or when a **bounded host** is full and cannot spill (no nvme
    /// tier): the caller's fallback is then drop-and-replay.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn demote(&mut self, id: PageId) -> Option<u64> {
        let idx = id.index();
        assert!(
            self.pages[idx].is_some(),
            "demote of unallocated page {id:?}"
        );
        if self.refcounts[idx] > 1 {
            return None;
        }
        match self.residency[idx] {
            Residency::Cold
            | Residency::Migrating(MigrationDir::ToCold)
            | Residency::Nvme
            | Residency::MigratingNvme(_) => return None,
            Residency::Hot | Residency::Migrating(MigrationDir::ToHot) => {}
        }
        // Make host room *before* touching the page, so a refused demotion
        // (bounded host, nothing spillable) leaves it exactly as it was.
        if !self.reclaim_host_slot() {
            return None;
        }
        let units = self.config.physical_page_size() as u64;
        match self.residency[idx] {
            Residency::Migrating(MigrationDir::ToHot) => {
                // Abort the inbound transfer: the page is wanted cold again
                // before it ever became readable. The spent bandwidth is
                // wasted traffic, charged to neither stall bucket.
                let (remaining, _) = self
                    .engine
                    .cancel(MigrationDir::ToHot, id)
                    .expect("migrating page must be in flight");
                self.trace_copy("cancel", MigrationDir::ToHot, id, remaining);
                self.mig.cancelled_token_units += remaining;
                self.waste_prefetched(idx);
            }
            Residency::Hot => self.waste_prefetched(idx),
            _ => unreachable!("filtered above"),
        }
        self.trace_copy("demote.issue", MigrationDir::ToCold, id, units);
        match self.mode {
            MigrationMode::Sync => {
                self.residency[idx] = Residency::Cold;
                self.hot_in_use -= 1;
                self.cold_in_use += 1;
                self.stamp_host(idx);
                self.mig.unhidden_token_units += units;
            }
            MigrationMode::Async => {
                // The hot slot stays occupied (and readable) until the
                // outbound transfer lands; a full queue force-completes its
                // oldest entry first, modeling a blocked copy stream.
                if self.engine.is_full(MigrationDir::ToCold) {
                    self.force_oldest(MigrationDir::ToCold);
                }
                self.residency[idx] = Residency::Migrating(MigrationDir::ToCold);
                self.engine.issue(MigrationDir::ToCold, id, units, false);
            }
        }
        self.tier.pages_demoted += 1;
        self.tier.demoted_token_units += units;
        Some(units)
    }

    /// Spills a cold (host-resident) page down to the nvme tier, freeing one
    /// bounded-host slot. Returns the modeled transfer cost in host-ledger
    /// units ([`crate::nvme_ledger_units`] of the page size), or `None` when
    /// the nvme tier is off or the page is not `Residency::Cold`.
    ///
    /// Unlike [`PagePool::demote`], spilling is legal on **co-owned** pages:
    /// within the cold tiers data stays readable through the pool either way,
    /// so a shared reader loses nothing — it just pays the recall on its next
    /// promotion. The spill cost is charged to the pool's migration ledger
    /// (unhidden under [`MigrationMode::Sync`]), not the caller's work clock,
    /// matching the demotion convention.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn spill(&mut self, id: PageId) -> Option<u64> {
        let idx = id.index();
        assert!(
            self.pages[idx].is_some(),
            "spill of unallocated page {id:?}"
        );
        if !self.tiers.nvme || self.residency[idx] != Residency::Cold {
            return None;
        }
        let ledger = nvme_ledger_units(self.config.physical_page_size() as u64);
        self.trace_copy_hop("spill.issue", Hop::Nvme, MigrationDir::ToCold, id, ledger);
        match self.mode {
            MigrationMode::Sync => {
                self.residency[idx] = Residency::Nvme;
                self.cold_in_use -= 1;
                self.nvme_in_use += 1;
                self.mig.unhidden_token_units += ledger;
            }
            MigrationMode::Async => {
                if self.engine.is_full_hop(Hop::Nvme, MigrationDir::ToCold) {
                    self.force_oldest_hop(Hop::Nvme, MigrationDir::ToCold);
                }
                self.residency[idx] = Residency::MigratingNvme(MigrationDir::ToCold);
                self.engine
                    .issue_hop(Hop::Nvme, MigrationDir::ToCold, id, ledger, false);
            }
        }
        self.tier.pages_spilled += 1;
        self.tier.spilled_token_units += ledger;
        Some(ledger)
    }

    /// Demand-recalls an nvme page into the host tier, fully unhidden (a
    /// demand fetch from the slow tier hides nothing in either mode).
    /// Returns the recall's ledger units.
    fn demand_recall(&mut self, id: PageId) -> u64 {
        let idx = id.index();
        debug_assert_eq!(self.residency[idx], Residency::Nvme);
        let ledger = nvme_ledger_units(self.config.physical_page_size() as u64);
        self.trace_copy_hop("recall.force", Hop::Nvme, MigrationDir::ToHot, id, ledger);
        self.mig.unhidden_token_units += ledger;
        self.mig.forced_completions += 1;
        self.nvme_in_use -= 1;
        self.cold_in_use += 1;
        self.residency[idx] = Residency::Cold;
        self.stamp_host(idx);
        self.tier.pages_recalled += 1;
        self.tier.recalled_token_units += ledger;
        ledger
    }

    /// Brings a page back to the hot tier so kernels may read it again,
    /// across however many hops its residency requires (`Nvme` pages pay the
    /// recall *and* the host hop). Returns the modeled transfer cost in
    /// ledger units this call issued — `Some(0)` when the page was already
    /// hot (no transfer happened) — or `None` when the hot tier is full (free
    /// or demote something first).
    ///
    /// Promotion is legal on shared pages (it moves data, never mutates it).
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn promote(&mut self, id: PageId) -> Option<u64> {
        let idx = id.index();
        assert!(
            self.pages[idx].is_some(),
            "promote of unallocated page {id:?}"
        );
        match self.residency[idx] {
            Residency::Hot => {
                self.touch_prefetched(idx);
                return Some(0);
            }
            // Already inbound: the promotion is in flight, nothing new moves.
            Residency::Migrating(MigrationDir::ToHot) => return Some(0),
            // Still draining out: abort the outbound transfer and keep the
            // device copy — a free promotion (the data never left).
            Residency::Migrating(MigrationDir::ToCold) => {
                let (remaining, _) = self
                    .engine
                    .cancel(MigrationDir::ToCold, id)
                    .expect("migrating page must be in flight");
                self.trace_copy("cancel", MigrationDir::ToCold, id, remaining);
                self.mig.cancelled_token_units += remaining;
                self.residency[idx] = Residency::Hot;
                return Some(0);
            }
            Residency::Cold | Residency::Nvme | Residency::MigratingNvme(_) => {}
        }
        if !self.reclaim_hot_slot() {
            return None;
        }
        // Multi-hop: bring the page into the host tier first, then the host
        // hop below proceeds exactly as for an ordinary cold page.
        let recalled = match self.residency[idx] {
            Residency::Cold => 0,
            // Demand-recall from the slow tier (fully unhidden in both modes).
            Residency::Nvme => {
                let ledger = self.demand_recall(id);
                self.touch_prefetched(idx);
                ledger
            }
            // Still spilling out: abort the spill and keep the host copy — a
            // free recall (the data never left the host).
            Residency::MigratingNvme(MigrationDir::ToCold) => {
                let (remaining, _) = self
                    .engine
                    .cancel_hop(Hop::Nvme, MigrationDir::ToCold, id)
                    .expect("migrating page must be in flight");
                self.trace_copy_hop("cancel", Hop::Nvme, MigrationDir::ToCold, id, remaining);
                self.mig.cancelled_token_units += remaining;
                self.residency[idx] = Residency::Cold;
                self.stamp_host(idx);
                0
            }
            // Recall already inbound: force the remainder and land it.
            Residency::MigratingNvme(MigrationDir::ToHot) => {
                let (remaining, _) = self
                    .engine
                    .force_page_hop(Hop::Nvme, MigrationDir::ToHot, id)
                    .expect("migrating page must be in flight");
                self.trace_copy_hop("force", Hop::Nvme, MigrationDir::ToHot, id, remaining);
                self.mig.unhidden_token_units += remaining;
                if remaining > 0 {
                    self.mig.forced_completions += 1;
                }
                self.land_hop(Hop::Nvme, MigrationDir::ToHot, id);
                self.touch_prefetched(idx);
                0
            }
            _ => unreachable!("filtered above"),
        };
        let units = self.config.physical_page_size() as u64;
        self.trace_copy("promote.issue", MigrationDir::ToHot, id, units);
        self.cold_in_use -= 1;
        self.hot_in_use += 1;
        self.peak_in_use = self.peak_in_use.max(self.hot_in_use);
        match self.mode {
            MigrationMode::Sync => {
                self.residency[idx] = Residency::Hot;
                self.mig.unhidden_token_units += units;
            }
            MigrationMode::Async => {
                if self.engine.is_full(MigrationDir::ToHot) {
                    self.force_oldest(MigrationDir::ToHot);
                }
                self.residency[idx] = Residency::Migrating(MigrationDir::ToHot);
                self.engine.issue(MigrationDir::ToHot, id, units, false);
            }
        }
        self.tier.pages_promoted += 1;
        self.tier.promoted_token_units += units;
        Some(recalled + units)
    }

    /// Makes `id` kernel-readable *now*, forcing any in-flight inbound
    /// transfer to completion. Returns `(issued, unhidden)` token-units: the
    /// new transfer traffic this call generated and the fraction of transfer
    /// cost the caller must absorb as stall. `None` when the hot tier is full.
    ///
    /// In [`MigrationMode::Sync`] this is exactly [`PagePool::promote`] with
    /// the full cost unhidden. In [`MigrationMode::Async`]:
    ///
    /// * `Hot` / outbound-in-flight pages cost nothing (an outbound transfer
    ///   is aborted for free — the device copy never left);
    /// * an inbound-in-flight page charges only its *remaining* units — the
    ///   part overlap didn't hide (a prefetch that landed early is free);
    /// * a cold page issues a promotion and forces it immediately (demand
    ///   fetch, nothing hidden).
    pub fn ensure_hot(&mut self, id: PageId) -> Option<(u64, u64)> {
        if self.mode == MigrationMode::Sync {
            return self.promote(id).map(|u| (u, u));
        }
        let idx = id.index();
        match self.residency[idx] {
            Residency::Hot => {
                self.touch_prefetched(idx);
                Some((0, 0))
            }
            Residency::Migrating(MigrationDir::ToCold) => {
                let (remaining, _) = self
                    .engine
                    .cancel(MigrationDir::ToCold, id)
                    .expect("migrating page must be in flight");
                self.trace_copy("cancel", MigrationDir::ToCold, id, remaining);
                self.mig.cancelled_token_units += remaining;
                self.residency[idx] = Residency::Hot;
                Some((0, 0))
            }
            Residency::Migrating(MigrationDir::ToHot) => {
                let (remaining, _) = self
                    .engine
                    .force_page(MigrationDir::ToHot, id)
                    .expect("migrating page must be in flight");
                self.trace_copy("force", MigrationDir::ToHot, id, remaining);
                self.mig.unhidden_token_units += remaining;
                if remaining > 0 {
                    self.mig.forced_completions += 1;
                }
                self.land(MigrationDir::ToHot, id);
                self.touch_prefetched(idx);
                Some((0, remaining))
            }
            Residency::Cold => {
                let issued = self.promote(id)?;
                let (remaining, _) = self
                    .engine
                    .force_page(MigrationDir::ToHot, id)
                    .expect("promotion just issued");
                self.trace_copy("force", MigrationDir::ToHot, id, remaining);
                self.mig.unhidden_token_units += remaining;
                self.mig.forced_completions += 1;
                self.land(MigrationDir::ToHot, id);
                Some((issued, remaining))
            }
            // Below the host: multi-hop demand fetch. `promote` settles the
            // nvme hop (demand recall / cancel / force); whatever host-hop
            // promotion it issued is then forced like the `Cold` arm, and the
            // unhidden delta captures both hops' stall.
            Residency::Nvme | Residency::MigratingNvme(_) => {
                let before = self.mig.unhidden_token_units;
                let issued = self.promote(id)?;
                if self.residency[idx] == Residency::Migrating(MigrationDir::ToHot) {
                    let (remaining, _) = self
                        .engine
                        .force_page(MigrationDir::ToHot, id)
                        .expect("promotion just issued");
                    self.trace_copy("force", MigrationDir::ToHot, id, remaining);
                    self.mig.unhidden_token_units += remaining;
                    self.mig.forced_completions += 1;
                    self.land(MigrationDir::ToHot, id);
                }
                Some((issued, self.mig.unhidden_token_units - before))
            }
        }
    }

    /// Speculatively moves a below-hot page one hop up on the copy engine
    /// (async mode only). A cold page promotes toward the hot tier; an nvme
    /// page recalls into the host tier (a later prefetch round can then lift
    /// it the rest of the way). Cheap and best-effort: declined — returning
    /// `false` — when the page is already hot or in flight, the destination
    /// tier has no genuinely free slot (prefetch never steals via reclaim),
    /// or the hop's inbound queue is full.
    pub fn prefetch(&mut self, id: PageId) -> bool {
        let idx = id.index();
        assert!(
            self.pages[idx].is_some(),
            "prefetch of unallocated page {id:?}"
        );
        if self.mode != MigrationMode::Async {
            return false;
        }
        match self.residency[idx] {
            Residency::Cold => {
                if self.hot_in_use >= self.hot_capacity || self.engine.is_full(MigrationDir::ToHot)
                {
                    return false;
                }
                let units = self.config.physical_page_size() as u64;
                self.trace_copy("prefetch.issue", MigrationDir::ToHot, id, units);
                self.cold_in_use -= 1;
                self.hot_in_use += 1;
                self.peak_in_use = self.peak_in_use.max(self.hot_in_use);
                self.residency[idx] = Residency::Migrating(MigrationDir::ToHot);
                self.engine.issue(MigrationDir::ToHot, id, units, true);
                self.prefetched[idx] = true;
                self.mig.prefetch_issued += 1;
                self.tier.pages_promoted += 1;
                self.tier.promoted_token_units += units;
                true
            }
            Residency::Nvme => {
                if !self.host_has_room() || self.engine.is_full_hop(Hop::Nvme, MigrationDir::ToHot)
                {
                    return false;
                }
                let ledger = nvme_ledger_units(self.config.physical_page_size() as u64);
                self.trace_copy_hop("prefetch.issue", Hop::Nvme, MigrationDir::ToHot, id, ledger);
                self.nvme_in_use -= 1;
                self.cold_in_use += 1;
                self.residency[idx] = Residency::MigratingNvme(MigrationDir::ToHot);
                self.engine
                    .issue_hop(Hop::Nvme, MigrationDir::ToHot, id, ledger, true);
                self.prefetched[idx] = true;
                self.mig.prefetch_issued += 1;
                self.tier.pages_recalled += 1;
                self.tier.recalled_token_units += ledger;
                true
            }
            _ => false,
        }
    }

    /// Feeds `units` ledger units of overlapped compute to the copy engine:
    /// each of the four hop×direction channels drains up to `units`
    /// (independent modeled DMA links), landing finished transfers and
    /// crediting the drained traffic as hidden. A no-op in
    /// [`MigrationMode::Sync`].
    pub fn advance_transfer_units(&mut self, units: u64) {
        let (landed, drained) = self.engine.advance(units);
        self.mig.hidden_token_units += drained;
        for (hop, dir, page) in landed {
            self.land_hop(hop, dir, page);
        }
    }

    /// Shared access to a live page.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    #[inline]
    pub fn page(&self, id: PageId) -> &KvPage {
        self.pages[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("access to unallocated page {id:?}"))
    }

    /// Mutable access to a live page.
    ///
    /// Writing into a page whose transfer is in flight is a hazard (the DMA
    /// would race the write), so an outbound transfer is aborted and an
    /// inbound one force-completed (charged as unhidden stall) first. In
    /// practice appends only target the hot tail page; this is the safety
    /// net, not a hot path.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    #[inline]
    pub fn page_mut(&mut self, id: PageId) -> &mut KvPage {
        match self.residency.get(id.index()) {
            Some(Residency::Migrating(MigrationDir::ToCold)) => {
                let (remaining, _) = self
                    .engine
                    .cancel(MigrationDir::ToCold, id)
                    .expect("migrating page must be in flight");
                self.trace_copy("cancel", MigrationDir::ToCold, id, remaining);
                self.mig.cancelled_token_units += remaining;
                self.residency[id.index()] = Residency::Hot;
            }
            Some(Residency::Migrating(MigrationDir::ToHot)) => {
                let (remaining, _) = self
                    .engine
                    .force_page(MigrationDir::ToHot, id)
                    .expect("migrating page must be in flight");
                self.trace_copy("force", MigrationDir::ToHot, id, remaining);
                self.mig.unhidden_token_units += remaining;
                self.mig.forced_completions += 1;
                self.land(MigrationDir::ToHot, id);
            }
            Some(Residency::MigratingNvme(MigrationDir::ToCold)) => {
                let (remaining, _) = self
                    .engine
                    .cancel_hop(Hop::Nvme, MigrationDir::ToCold, id)
                    .expect("migrating page must be in flight");
                self.trace_copy_hop("cancel", Hop::Nvme, MigrationDir::ToCold, id, remaining);
                self.mig.cancelled_token_units += remaining;
                self.residency[id.index()] = Residency::Cold;
                self.stamp_host(id.index());
            }
            Some(Residency::MigratingNvme(MigrationDir::ToHot)) => {
                let (remaining, _) = self
                    .engine
                    .force_page_hop(Hop::Nvme, MigrationDir::ToHot, id)
                    .expect("migrating page must be in flight");
                self.trace_copy_hop("force", Hop::Nvme, MigrationDir::ToHot, id, remaining);
                self.mig.unhidden_token_units += remaining;
                self.mig.forced_completions += 1;
                self.land_hop(Hop::Nvme, MigrationDir::ToHot, id);
            }
            _ => {}
        }
        self.pages[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("access to unallocated page {id:?}"))
    }

    /// Current reference count of a page (0 if free).
    pub fn refcount(&self, id: PageId) -> u32 {
        self.refcounts[id.index()]
    }

    /// True when the page is referenced by more than one owner (a sequence must
    /// not append into it in place; see [`PagePool::fork`]).
    pub fn is_shared(&self, id: PageId) -> bool {
        self.refcounts[id.index()] > 1
    }

    /// Pages currently referenced by more than one owner (prefix-cache sharing).
    pub fn shared_pages(&self) -> usize {
        self.refcounts.iter().filter(|&&rc| rc > 1).count()
    }

    /// Total copy-on-write forks performed over the pool's lifetime.
    pub fn fork_count(&self) -> u64 {
        self.forks
    }

    /// Copy-on-write fork: replaces the caller's reference to `id` with a private
    /// copy of the page's contents (keys, values, quantization params, stats).
    ///
    /// The caller's reference to `id` is dropped (refcount decremented, the page
    /// recycled if that was the last reference) and a fresh page with refcount 1 is
    /// returned. Callers invoke this before appending into a page whose refcount is
    /// above 1, so shared prefix pages are never mutated — the CoW discipline that
    /// makes cross-request prefix sharing safe.
    ///
    /// Returns `None` (caller's reference unchanged) if the hot tier is full.
    /// The fork is always created hot (forking exists to append, and appends
    /// only ever target device-resident pages).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not allocated.
    pub fn fork(&mut self, id: PageId) -> Option<PageId> {
        assert!(
            self.pages[id.index()].is_some(),
            "fork of unallocated page {id:?}"
        );
        if !self.reclaim_hot_slot() {
            return None;
        }
        let copy = self.pages[id.index()].clone();
        let new = self.take_slot();
        self.pages[new.index()] = copy;
        self.refcounts[new.index()] = 1;
        self.residency[new.index()] = Residency::Hot;
        self.prefetched[new.index()] = false;
        self.hot_in_use += 1;
        self.peak_in_use = self.peak_in_use.max(self.hot_in_use);
        self.forks += 1;
        self.free(id);
        Some(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(prec: KvPrecision) -> PagePool {
        PagePool::new(PagingConfig::new(4, 2, prec), 8, 4)
    }

    #[test]
    fn allocate_until_exhausted_then_free() {
        let mut p = pool(KvPrecision::Fp16);
        let ids: Vec<_> = (0..8).map(|_| p.allocate().unwrap()).collect();
        assert!(p.allocate().is_none());
        assert_eq!(p.in_use(), 8);
        for id in ids {
            p.free(id);
        }
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.peak_in_use(), 8);
    }

    #[test]
    fn allocated_ids_are_distinct() {
        let mut p = pool(KvPrecision::Fp16);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn refcounted_page_survives_one_free() {
        let mut p = pool(KvPrecision::Fp16);
        let id = p.allocate().unwrap();
        p.retain(id);
        p.free(id);
        assert_eq!(p.refcount(id), 1);
        p.page(id); // still accessible
        p.free(id);
        assert_eq!(p.refcount(id), 0);
    }

    #[test]
    fn append_and_read_fp16_is_lossless() {
        let mut p = pool(KvPrecision::Fp16);
        let id = p.allocate().unwrap();
        let k = [1.0, -2.0, 3.0, -4.0];
        let v = [0.5, 0.25, -0.125, 8.0];
        p.page_mut(id).append(&k, &v);
        assert_eq!(p.page(id).key_row(0), &k);
        assert_eq!(p.page(id).value_row(0), &v);
    }

    #[test]
    fn append_quantized_bounded_error() {
        let mut p = pool(KvPrecision::Int4);
        let id = p.allocate().unwrap();
        let k = [1.0f32, -2.0, 3.0, -4.0];
        let v = [0.5f32, 0.25, -0.125, 8.0];
        p.page_mut(id).append(&k, &v);
        let page = p.page(id);
        // INT4 over range 7 → step ~0.47; error <= step/2.
        for (a, b) in page.key_row(0).iter().zip(&k) {
            assert!((a - b).abs() < 0.25);
        }
        for (a, b) in page.value_row(0).iter().zip(&v) {
            assert!((a - b).abs() < 0.3);
        }
    }

    #[test]
    fn stats_partition_by_logical_page() {
        let mut p = pool(KvPrecision::Fp16);
        let id = p.allocate().unwrap();
        let page = p.page_mut(id);
        // logical page size 2: tokens 0-1 in logical 0, tokens 2-3 in logical 1.
        page.append(&[1.0, 0.0, 0.0, 0.0], &[0.0; 4]);
        page.append(&[2.0, 0.0, 0.0, 0.0], &[0.0; 4]);
        page.append(&[-5.0, 0.0, 0.0, 0.0], &[0.0; 4]);
        assert_eq!(page.logical_stats(0).kmax()[0], 2.0);
        assert_eq!(page.logical_stats(0).kmin()[0], 1.0);
        assert_eq!(page.logical_stats(1).kmin()[0], -5.0);
        assert!(page.logical_stats(1).tokens() == 1);
        assert_eq!(page.occupied_logical_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "append to full page")]
    fn overfull_page_panics() {
        let mut p = pool(KvPrecision::Fp16);
        let id = p.allocate().unwrap();
        for _ in 0..5 {
            p.page_mut(id).append(&[0.0; 4], &[0.0; 4]);
        }
    }

    #[test]
    fn fork_copies_contents_and_drops_source_reference() {
        let mut p = pool(KvPrecision::Fp16);
        let id = p.allocate().unwrap();
        p.page_mut(id)
            .append(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        p.retain(id); // shared: e.g. a prefix-cache entry plus one sequence
        assert!(p.is_shared(id));
        assert_eq!(p.shared_pages(), 1);
        let forked = p.fork(id).unwrap();
        assert_ne!(forked, id);
        assert_eq!(p.refcount(id), 1, "fork drops the caller's reference");
        assert_eq!(p.refcount(forked), 1);
        assert!(!p.is_shared(id));
        assert_eq!(p.fork_count(), 1);
        // Contents are identical but independent.
        assert_eq!(p.page(forked).key_row(0), p.page(id).key_row(0));
        p.page_mut(forked).append(&[9.0; 4], &[9.0; 4]);
        assert_eq!(p.page(id).len(), 1);
        assert_eq!(p.page(forked).len(), 2);
    }

    #[test]
    fn fork_of_sole_reference_recycles_source() {
        let mut p = pool(KvPrecision::Fp16);
        let id = p.allocate().unwrap();
        let forked = p.fork(id).unwrap();
        assert_eq!(p.in_use(), 1, "source page recycled");
        assert_eq!(p.refcount(forked), 1);
    }

    #[test]
    fn fork_fails_cleanly_when_pool_exhausted() {
        let mut p = PagePool::new(PagingConfig::new(4, 2, KvPrecision::Fp16), 1, 4);
        let id = p.allocate().unwrap();
        p.retain(id);
        assert!(p.fork(id).is_none());
        assert_eq!(p.refcount(id), 2, "failed fork leaves references unchanged");
    }

    #[test]
    fn demote_frees_hot_capacity_and_preserves_contents() {
        let mut p = pool(KvPrecision::Fp16);
        let ids: Vec<_> = (0..8).map(|_| p.allocate().unwrap()).collect();
        p.page_mut(ids[0])
            .append(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        assert!(p.allocate().is_none());
        let units = p.demote(ids[0]).unwrap();
        assert_eq!(units, 4); // physical page size in token-units
        assert!(!p.is_hot(ids[0]));
        assert_eq!(p.in_use(), 7);
        assert_eq!(p.cold_in_use(), 1);
        assert_eq!(p.total_in_use(), 8);
        assert_eq!(p.free_pages(), 1);
        // Freed hot slot is allocatable while the cold page lives on.
        let extra = p.allocate().unwrap();
        assert_ne!(extra, ids[0]);
        assert_eq!(p.page(ids[0]).key_row(0), &[1.0, 2.0, 3.0, 4.0]);
        // Promote fails while the hot tier is full, succeeds after a free.
        assert!(p.promote(ids[0]).is_none());
        p.free(extra);
        assert_eq!(p.promote(ids[0]), Some(4));
        assert!(p.is_hot(ids[0]));
        assert_eq!(p.page(ids[0]).value_row(0), &[5.0, 6.0, 7.0, 8.0]);
        let t = p.tier_stats();
        assert_eq!((t.pages_demoted, t.pages_promoted), (1, 1));
        assert_eq!(t.demoted_token_units, 4);
        assert_eq!(t.promoted_token_units, 4);
    }

    #[test]
    fn demote_refuses_shared_and_double_demote() {
        let mut p = pool(KvPrecision::Fp16);
        let id = p.allocate().unwrap();
        p.retain(id);
        assert!(p.demote(id).is_none(), "co-owned page must stay hot");
        assert!(p.is_hot(id));
        p.free(id);
        assert!(p.demote(id).is_some());
        assert!(p.demote(id).is_none(), "already cold");
        // Promoting a hot page is a free no-op.
        p.promote(id).unwrap();
        assert_eq!(p.promote(id), Some(0));
    }

    #[test]
    fn free_of_cold_page_recycles_slot() {
        let mut p = pool(KvPrecision::Fp16);
        let id = p.allocate().unwrap();
        p.demote(id).unwrap();
        p.free(id);
        assert_eq!(p.cold_in_use(), 0);
        assert_eq!(p.total_in_use(), 0);
        // The recycled slot comes back hot.
        let again = p.allocate().unwrap();
        assert_eq!(again, id);
        assert!(p.is_hot(again));
    }

    #[test]
    fn shared_cold_page_can_be_promoted_and_freed_by_owners() {
        let mut p = pool(KvPrecision::Fp16);
        let id = p.allocate().unwrap();
        p.demote(id).unwrap();
        // A second owner appears while the page is cold (a prefix-cache entry
        // retaining a demoted donor's table).
        p.retain(id);
        assert!(
            p.promote(id).is_some(),
            "promotion is legal on shared pages"
        );
        p.free(id);
        p.free(id);
        assert_eq!(p.total_in_use(), 0);
    }

    #[test]
    fn peak_tracks_hot_tier_only() {
        let mut p = pool(KvPrecision::Fp16);
        let ids: Vec<_> = (0..6).map(|_| p.allocate().unwrap()).collect();
        assert_eq!(p.peak_in_use(), 6);
        for &id in &ids {
            p.demote(id).unwrap();
        }
        let _ = (0..8).map(|_| p.allocate().unwrap()).collect::<Vec<_>>();
        assert_eq!(p.peak_in_use(), 8);
        assert_eq!(p.total_in_use(), 14);
    }

    fn tiered_pool(host_pages: usize, nvme: bool, mode: MigrationMode) -> PagePool {
        PagePool::new_with_tiers(
            PagingConfig::new(4, 2, KvPrecision::Fp16),
            4,
            4,
            mode,
            TierConfig { host_pages, nvme },
        )
    }

    #[test]
    fn bounded_host_without_nvme_refuses_demote() {
        let mut p = tiered_pool(1, false, MigrationMode::Sync);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_eq!(p.demote(a), Some(4));
        assert!(!p.host_has_room());
        assert!(p.demote(b).is_none(), "host full, no nvme: refuse");
        assert!(p.is_hot(b), "refused demotion leaves the page untouched");
        // Freeing the cold page reopens the host.
        p.free(a);
        assert!(p.demote(b).is_some());
        assert_eq!((p.in_use(), p.cold_in_use(), p.nvme_in_use()), (0, 1, 0));
    }

    #[test]
    fn full_host_spills_oldest_resident_first_sync() {
        let mut p = tiered_pool(2, true, MigrationMode::Sync);
        let ids: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        p.page_mut(ids[0]).append(&[1.0; 4], &[2.0; 4]);
        // Host fills with ids[0], ids[1]; demoting ids[2] must spill ids[0]
        // (oldest host-resident) down to nvme.
        assert_eq!(p.demote(ids[0]), Some(4));
        assert_eq!(p.demote(ids[1]), Some(4));
        assert_eq!(p.demote(ids[2]), Some(4));
        assert_eq!(p.residency(ids[0]), Residency::Nvme);
        assert_eq!(p.residency(ids[1]), Residency::Cold);
        assert_eq!(p.residency(ids[2]), Residency::Cold);
        assert_eq!((p.in_use(), p.cold_in_use(), p.nvme_in_use()), (1, 2, 1));
        // Contents survive the trip down.
        assert_eq!(p.page(ids[0]).key_row(0), &[1.0; 4]);
        let t = p.tier_stats();
        assert_eq!(t.pages_spilled, 1);
        assert_eq!(t.spilled_token_units, nvme_ledger_units(4));
        // Promotion from nvme pays both hops: recall (8×4 ledger) + host hop.
        let free_hot = p.allocate().unwrap();
        p.free(free_hot);
        assert_eq!(p.promote(ids[0]), Some(nvme_ledger_units(4) + 4));
        assert!(p.is_hot(ids[0]));
        assert_eq!(p.page(ids[0]).value_row(0), &[2.0; 4]);
        assert_eq!(p.tier_stats().pages_recalled, 1);
        // Zero leaks.
        for id in ids {
            p.free(id);
        }
        assert_eq!(p.total_in_use(), 0);
    }

    #[test]
    fn multi_hop_landing_order_async() {
        let mut p = tiered_pool(1, true, MigrationMode::Async);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        // Demote a: in flight on the host hop, still kernel-readable.
        assert_eq!(p.demote(a), Some(4));
        assert_eq!(p.residency(a), Residency::Migrating(MigrationDir::ToCold));
        assert!(p.is_hot(a));
        p.advance_transfer_units(4);
        assert_eq!(p.residency(a), Residency::Cold);
        // Demote b: host (capacity 1) is full, so the reclaim spills a —
        // which goes in flight on the nvme hop, still host-accounted.
        assert_eq!(p.demote(b), Some(4));
        assert_eq!(
            p.residency(a),
            Residency::MigratingNvme(MigrationDir::ToCold)
        );
        assert_eq!(p.residency(b), Residency::Migrating(MigrationDir::ToCold));
        assert_eq!(p.host_used(), 1, "spill-in-flight cedes its host slot");
        // One advance lands the host hop fully and 4 of the 32 spill units.
        p.advance_transfer_units(4);
        assert_eq!(p.residency(b), Residency::Cold);
        assert_eq!(
            p.residency(a),
            Residency::MigratingNvme(MigrationDir::ToCold)
        );
        p.advance_transfer_units(nvme_ledger_units(4) - 4);
        assert_eq!(p.residency(a), Residency::Nvme);
        assert_eq!((p.in_use(), p.cold_in_use(), p.nvme_in_use()), (0, 1, 1));
        // Prefetch recalls a into the host... but the host is full: declined.
        assert!(!p.prefetch(a));
        p.free(b);
        // Now the recall prefetch is accepted and lands host-resident.
        assert!(p.prefetch(a));
        assert_eq!(
            p.residency(a),
            Residency::MigratingNvme(MigrationDir::ToHot)
        );
        p.advance_transfer_units(nvme_ledger_units(4));
        assert_eq!(p.residency(a), Residency::Cold);
        // A second prefetch round lifts it the rest of the way to hot.
        assert!(p.prefetch(a));
        p.advance_transfer_units(4);
        assert_eq!(p.residency(a), Residency::Hot);
        let m = p.migration_stats();
        assert_eq!(m.prefetch_issued, 2);
        p.free(a);
        assert_eq!(p.total_in_use(), 0, "zero leaks");
    }

    #[test]
    fn spill_is_legal_on_shared_pages_and_frees_cleanly() {
        let mut p = tiered_pool(0, true, MigrationMode::Sync);
        let id = p.allocate().unwrap();
        p.demote(id).unwrap();
        p.retain(id); // co-owned while cold (e.g. a spilled prefix entry)
        assert!(
            p.spill(id).is_some(),
            "spill moves data without mutating it — legal on shared pages"
        );
        assert_eq!(p.residency(id), Residency::Nvme);
        p.free(id);
        p.free(id);
        assert_eq!(p.total_in_use(), 0);
        assert_eq!(p.nvme_in_use(), 0);
    }

    #[test]
    fn freeing_in_flight_nvme_pages_cancels_and_leaks_nothing() {
        let mut p = tiered_pool(0, true, MigrationMode::Async);
        let a = p.allocate().unwrap();
        p.demote(a).unwrap();
        p.advance_transfer_units(4);
        p.spill(a).unwrap();
        assert_eq!(
            p.residency(a),
            Residency::MigratingNvme(MigrationDir::ToCold)
        );
        p.free(a);
        assert_eq!(p.total_in_use(), 0);
        assert_eq!(p.in_flight_transfers(), 0, "cancelled, not landed");
        let m = p.migration_stats();
        assert_eq!(m.cancelled_token_units, nvme_ledger_units(4));
    }

    #[test]
    fn ensure_hot_charges_both_hops_from_nvme() {
        let mut p = tiered_pool(0, true, MigrationMode::Async);
        let id = p.allocate().unwrap();
        p.demote(id).unwrap();
        p.advance_transfer_units(4);
        p.spill(id).unwrap();
        p.advance_transfer_units(nvme_ledger_units(4));
        assert_eq!(p.residency(id), Residency::Nvme);
        let (issued, unhidden) = p.ensure_hot(id).unwrap();
        assert_eq!(issued, nvme_ledger_units(4) + 4);
        assert_eq!(
            unhidden,
            nvme_ledger_units(4) + 4,
            "a demand fetch from nvme hides nothing on either hop"
        );
        assert!(p.is_hot(id));
        p.free(id);
        assert_eq!(p.total_in_use(), 0);
    }

    #[test]
    fn reclaim_forces_cheapest_outbound_remainder() {
        // Two outbound transfers; one has partially drained (1 unit left)
        // while the other still holds 4. Reclaim must pick the cheapest and
        // charge only its remainder as forced-unhidden. (The cheapest-vs-
        // oldest distinction with unequal transfer sizes is pinned at the
        // engine level in `force_cheapest_prefers_fewest_remaining_units`.)
        let mut p = PagePool::new_with_migration(
            PagingConfig::new(4, 2, KvPrecision::Fp16),
            2,
            4,
            MigrationMode::Async,
        );
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.demote(a).unwrap();
        p.advance_transfer_units(3); // a: 1 unit left
        p.demote(b).unwrap(); // b: 4 units left
        let before = p.migration_stats().unhidden_token_units;
        let c = p.allocate().unwrap();
        assert_eq!(p.residency(a), Residency::Cold, "cheapest transfer forced");
        assert_eq!(p.residency(b), Residency::Migrating(MigrationDir::ToCold));
        assert_eq!(
            p.migration_stats().unhidden_token_units - before,
            1,
            "only the cheapest remainder is charged"
        );
        let _ = c;
    }

    #[test]
    fn device_bytes_by_precision() {
        let mut p4 = pool(KvPrecision::Int4);
        let id = p4.allocate().unwrap();
        let b4 = p4.page(id).device_bytes();
        let mut pf = pool(KvPrecision::Fp16);
        let idf = pf.allocate().unwrap();
        let bf = pf.page(idf).device_bytes();
        // Tiny test pages make scale/zero metadata relatively large; the data bytes
        // alone are 4x smaller, so the whole page must still be strictly smaller.
        assert!(b4 < bf, "int4 page {b4} should be below fp16 page {bf}");
    }
}
