//! Page table of a streaming head: only sink and local pages are retained.

use std::collections::VecDeque;

use crate::{MigrationDir, PageId, PagePool, Residency};

/// Λ-mask geometry of a streaming head, in *pages*.
///
/// A streaming head attends to the first `sink_pages` physical pages (attention
/// sinks) and the most recent `local_pages` pages (the local window), per
/// StreamingLLM/DuoAttention. Figure 4(c) draws one sink block and two local blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingWindow {
    /// Number of leading (sink) pages always kept.
    pub sink_pages: usize,
    /// Number of trailing (local) pages always kept.
    pub local_pages: usize,
}

impl StreamingWindow {
    /// Creates a window description.
    ///
    /// # Panics
    ///
    /// Panics if `local_pages == 0` (the newest page must always be attendable).
    pub fn new(sink_pages: usize, local_pages: usize) -> Self {
        assert!(
            local_pages > 0,
            "streaming window needs at least one local page"
        );
        Self {
            sink_pages,
            local_pages,
        }
    }

    /// The paper's illustrative default: one sink page, two local pages.
    pub fn paper_default() -> Self {
        Self::new(1, 2)
    }

    /// Maximum number of pages this head ever retains.
    pub fn max_pages(&self) -> usize {
        self.sink_pages + self.local_pages
    }
}

/// The KV history of one streaming head: sink pages plus a ring of local pages
/// (Figure 5, "Streaming Head Pages" — the page table contains only sink & local
/// pages). Tokens between sink and window are *evicted*, their pages freed.
///
/// Each retained page remembers the global position of its first token so kernels can
/// recover absolute token indices.
#[derive(Debug, Clone)]
pub struct StreamingHeadCache {
    window: StreamingWindow,
    sink: Vec<PageId>,
    /// `(start_token, page)` pairs, oldest first.
    local: VecDeque<(usize, PageId)>,
    tokens: usize,
}

impl StreamingHeadCache {
    /// Creates an empty cache with the given window geometry.
    pub fn new(window: StreamingWindow) -> Self {
        Self {
            window,
            sink: Vec::new(),
            local: VecDeque::new(),
            tokens: 0,
        }
    }

    /// The window geometry.
    pub fn window(&self) -> StreamingWindow {
        self.window
    }

    /// Total tokens ever appended (including evicted ones).
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Number of pages currently retained (sink + local).
    pub fn resident_pages(&self) -> usize {
        self.sink.len() + self.local.len()
    }

    /// Number of *tokens* currently resident, i.e. the attention span of the head.
    pub fn resident_tokens(&self, pool: &PagePool) -> usize {
        let sink: usize = self.sink.iter().map(|&id| pool.page(id).len()).sum();
        let local: usize = self.local.iter().map(|&(_, id)| pool.page(id).len()).sum();
        sink + local
    }

    /// The retained page table: sink pages first, then local pages oldest-first,
    /// each with the global token index of its first token.
    pub fn page_table(&self, pool: &PagePool) -> Vec<(usize, PageId)> {
        let np = pool.config().physical_page_size();
        let mut out: Vec<(usize, PageId)> = self
            .sink
            .iter()
            .enumerate()
            .map(|(i, &id)| (i * np, id))
            .collect();
        out.extend(self.local.iter().copied());
        out
    }

    /// True when appending the next token requires allocating a fresh page —
    /// because the target page is full, missing, or *shared* with another owner
    /// (prefix-cache sharing) and must be copy-on-write forked before writing.
    ///
    /// Eviction runs *after* allocation, so even when the append nets zero resident
    /// growth it transiently needs one free page; this method reports that
    /// transient demand, which is what a scheduler must reserve.
    pub fn needs_page_for_next_append(&self, pool: &PagePool) -> bool {
        let np = pool.config().physical_page_size();
        let in_sink_region = self.tokens / np < self.window.sink_pages;
        if in_sink_region {
            match self.sink.last() {
                Some(&id) => pool.page(id).is_full() || pool.is_shared(id),
                None => true,
            }
        } else {
            match self.local.back() {
                Some(&(_, id)) => pool.page(id).is_full() || pool.is_shared(id),
                None => true,
            }
        }
    }

    /// Appends one `(key, value)` row, allocating/evicting pages as needed.
    ///
    /// Returns `false` (cache unchanged) if a new page was needed and the pool was
    /// exhausted. Eviction frees the oldest local page once more than `local_pages`
    /// non-sink pages exist, so allocation pressure is bounded by
    /// `window.max_pages() + 1`.
    pub fn append(&mut self, pool: &mut PagePool, key: &[f32], value: &[f32]) -> bool {
        let np = pool.config().physical_page_size();
        let pos = self.tokens;
        let in_sink_region = pos / np < self.window.sink_pages;
        if in_sink_region {
            let need_new = match self.sink.last() {
                Some(&id) => pool.page(id).is_full(),
                None => true,
            };
            if need_new {
                match pool.allocate() {
                    Some(id) => self.sink.push(id),
                    None => return false,
                }
            } else {
                // Copy-on-write: never append into a page another owner shares.
                let id = *self.sink.last().expect("sink page ensured");
                if pool.is_shared(id) {
                    match pool.fork(id) {
                        Some(forked) => *self.sink.last_mut().expect("sink page ensured") = forked,
                        None => return false,
                    }
                }
            }
            let id = *self.sink.last().expect("sink page ensured");
            pool.page_mut(id).append(key, value);
        } else {
            let need_new = match self.local.back() {
                Some(&(_, id)) => pool.page(id).is_full(),
                None => true,
            };
            if need_new {
                match pool.allocate() {
                    Some(id) => {
                        let start = (pos / np) * np;
                        self.local.push_back((start, id));
                    }
                    None => return false,
                }
            } else {
                let (_, id) = *self.local.back().expect("local page ensured");
                if pool.is_shared(id) {
                    match pool.fork(id) {
                        Some(forked) => {
                            self.local.back_mut().expect("local page ensured").1 = forked;
                        }
                        None => return false,
                    }
                }
            }
            let (_, id) = *self.local.back().expect("local page ensured");
            pool.page_mut(id).append(key, value);
            // Evict pages that fell out of the local window.
            while self.local.len() > self.window.local_pages {
                let (_, old) = self.local.pop_front().expect("len checked");
                pool.free(old);
            }
        }
        self.tokens += 1;
        true
    }

    /// Frees every retained page and clears the cache.
    pub fn release(&mut self, pool: &mut PagePool) {
        for id in self.sink.drain(..) {
            pool.free(id);
        }
        for (_, id) in self.local.drain(..) {
            pool.free(id);
        }
        self.tokens = 0;
    }

    /// Takes one additional reference on every retained page (prefix sharing: the
    /// caller becomes a co-owner and must eventually `release` its copy).
    pub fn retain_all(&self, pool: &mut PagePool) {
        for &id in &self.sink {
            pool.retain(id);
        }
        for &(_, id) in &self.local {
            pool.retain(id);
        }
    }

    /// True when at least one retained page is referenced by this cache alone,
    /// i.e. releasing the cache would return physical pages to the pool.
    pub fn holds_sole_reference(&self, pool: &PagePool) -> bool {
        self.sink.iter().any(|&id| pool.refcount(id) == 1)
            || self.local.iter().any(|&(_, id)| pool.refcount(id) == 1)
    }

    /// All pages this head currently retains (sink first, then local).
    fn retained_ids(&self) -> impl Iterator<Item = PageId> + '_ {
        self.sink
            .iter()
            .copied()
            .chain(self.local.iter().map(|&(_, id)| id))
    }

    /// Demotes every sole-owned hot page (sink + local ring) to the cold tier
    /// (swap-out of a whole sequence; the *selection-driven* demotion policy
    /// never touches streaming heads — their window is the working set).
    /// Returns `(pages moved, token-units moved)`.
    pub fn demote_all(&self, pool: &mut PagePool) -> (u64, u64) {
        let mut pages = 0;
        let mut units = 0;
        for id in self.retained_ids() {
            if let Some(u) = pool.demote(id) {
                pages += 1;
                units += u;
            }
        }
        (pages, units)
    }

    /// Promotes every cold retained page back to the hot tier. Returns
    /// `(pages moved, token-units moved)`, or `None` if the hot tier filled up
    /// mid-way (reserve [`StreamingHeadCache::cold_pages`] free slots first).
    ///
    /// Every page goes through [`PagePool::promote`], so in-flight states are
    /// handled uniformly (see [`crate::DenseHeadCache::promote_all`]).
    pub fn promote_all(&self, pool: &mut PagePool) -> Option<(u64, u64)> {
        let mut pages = 0;
        let mut units = 0;
        for id in self.retained_ids() {
            match pool.promote(id)? {
                0 => {}
                u => {
                    pages += 1;
                    units += u;
                }
            }
        }
        Some((pages, units))
    }

    /// Makes every retained page kernel-readable *now* (see
    /// [`PagePool::ensure_hot`]). Returns `(pages moved, token-units issued,
    /// token-units unhidden)`, or `None` if the hot tier filled up mid-way.
    pub fn ensure_resident(&self, pool: &mut PagePool) -> Option<(u64, u64, u64)> {
        let mut pages = 0;
        let mut units = 0;
        let mut unhidden = 0;
        for id in self.retained_ids() {
            let (u, uh) = pool.ensure_hot(id)?;
            if u > 0 {
                pages += 1;
            }
            units += u;
            unhidden += uh;
        }
        Some((pages, units, unhidden))
    }

    /// Number of retained pages currently in the cold tier.
    pub fn cold_pages(&self, pool: &PagePool) -> usize {
        self.retained_ids().filter(|&id| !pool.is_hot(id)).count()
    }

    /// Hot slots a swap-in of this head must newly claim (see
    /// [`crate::DenseHeadCache::swap_in_demand`]): below-hot pages plus own
    /// outbound transfers still in flight.
    pub fn swap_in_demand(&self, pool: &PagePool) -> usize {
        self.retained_ids()
            .filter(|&id| {
                matches!(
                    pool.residency(id),
                    Residency::Cold
                        | Residency::Migrating(MigrationDir::ToCold)
                        | Residency::Nvme
                        | Residency::MigratingNvme(_)
                )
            })
            .count()
    }

    /// Retained pages that are both sole-owned and hot — exactly what a
    /// swap-out ([`StreamingHeadCache::demote_all`]) would move.
    pub fn sole_owned_hot_pages(&self, pool: &PagePool) -> usize {
        self.retained_ids()
            .filter(|&id| pool.refcount(id) == 1 && pool.is_hot(id))
            .count()
    }

    /// Modeled ledger units to bring every retained page hot again, by tier
    /// (see [`crate::DenseHeadCache::promote_back_cost_units`]).
    pub fn promote_back_cost_units(&self, pool: &PagePool) -> u64 {
        let np = pool.config().physical_page_size() as u64;
        let nvme_cost = crate::nvme_ledger_units(np) + np;
        self.retained_ids()
            .map(|id| match pool.residency(id) {
                Residency::Hot | Residency::Migrating(_) => {
                    if pool.is_shared(id) {
                        0
                    } else {
                        np
                    }
                }
                Residency::Cold => np,
                Residency::Nvme | Residency::MigratingNvme(_) => nvme_cost,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PagingConfig;
    use lserve_quant::KvPrecision;

    fn setup() -> (PagePool, StreamingHeadCache) {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let pool = PagePool::new(cfg, 64, 2);
        let cache = StreamingHeadCache::new(StreamingWindow::new(1, 2));
        (pool, cache)
    }

    fn push_n(pool: &mut PagePool, c: &mut StreamingHeadCache, n: usize) {
        for i in 0..n {
            assert!(c.append(pool, &[i as f32, 0.0], &[0.0, i as f32]));
        }
    }

    #[test]
    fn resident_pages_bounded_by_window() {
        let (mut pool, mut c) = setup();
        push_n(&mut pool, &mut c, 100);
        assert_eq!(c.tokens(), 100);
        assert!(c.resident_pages() <= c.window().max_pages());
        // 1 sink page (4 tokens) + at most 2 local pages (8 tokens).
        assert!(c.resident_tokens(&pool) <= 12);
    }

    #[test]
    fn pool_usage_is_constant_during_long_decode() {
        let (mut pool, mut c) = setup();
        push_n(&mut pool, &mut c, 40);
        let used_at_40 = pool.in_use();
        push_n(&mut pool, &mut c, 60);
        assert_eq!(pool.in_use(), used_at_40, "streaming head must not grow");
    }

    #[test]
    fn sink_pages_retain_first_tokens() {
        let (mut pool, mut c) = setup();
        push_n(&mut pool, &mut c, 50);
        let table = c.page_table(&pool);
        // First entry must be the sink page starting at token 0 holding keys 0..4.
        let (start, id) = table[0];
        assert_eq!(start, 0);
        assert_eq!(pool.page(id).key_row(0)[0], 0.0);
        assert_eq!(pool.page(id).key_row(3)[0], 3.0);
    }

    #[test]
    fn local_pages_cover_most_recent_tokens() {
        let (mut pool, mut c) = setup();
        push_n(&mut pool, &mut c, 50);
        let table = c.page_table(&pool);
        let (last_start, last_id) = *table.last().unwrap();
        let last_len = pool.page(last_id).len();
        assert_eq!(
            last_start + last_len,
            50,
            "newest page must end at token 50"
        );
    }

    #[test]
    fn page_starts_are_increasing_and_aligned() {
        let (mut pool, mut c) = setup();
        push_n(&mut pool, &mut c, 37);
        let table = c.page_table(&pool);
        let np = pool.config().physical_page_size();
        let mut prev = None;
        for (start, _) in table {
            assert_eq!(start % np, 0);
            if let Some(p) = prev {
                assert!(start > p);
            }
            prev = Some(start);
        }
    }

    #[test]
    fn release_frees_everything() {
        let (mut pool, mut c) = setup();
        push_n(&mut pool, &mut c, 30);
        assert!(pool.in_use() > 0);
        c.release(&mut pool);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn append_into_shared_pages_forks_not_mutates() {
        let (mut pool, mut c) = setup();
        push_n(&mut pool, &mut c, 10); // 1 sink page + local pages, last partial
        c.retain_all(&mut pool); // a prefix-cache entry now co-owns every page
        let frozen: Vec<(usize, PageId)> = c.page_table(&pool);
        let frozen_lens: Vec<usize> = frozen.iter().map(|&(_, id)| pool.page(id).len()).collect();
        assert!(c.needs_page_for_next_append(&pool));
        push_n(&mut pool, &mut c, 8);
        // The co-owned snapshot is bit-for-bit untouched: same lengths, and the
        // evicted-from-the-window pages are still alive through the extra refs.
        for (&(_, id), &len) in frozen.iter().zip(&frozen_lens) {
            assert_eq!(pool.page(id).len(), len, "shared page {id:?} mutated");
        }
        assert_eq!(c.tokens(), 18);
    }

    #[test]
    fn zero_sink_pages_allowed() {
        let cfg = PagingConfig::new(4, 4, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 8, 2);
        let mut c = StreamingHeadCache::new(StreamingWindow::new(0, 1));
        for i in 0..20 {
            assert!(c.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]));
        }
        assert!(c.resident_pages() <= 1 + 1); // one live local + transient
        assert!(c.resident_tokens(&pool) <= 8);
    }
}
