//! Per-logical-page key statistics (`K_stats` in Figure 5) and the tier
//! migration accounting of the hierarchical (hot device / bounded host /
//! modeled NVMe) pool.

/// Modeled host-link speed, relative to recompute: transferring one token's
/// KV page slot across the host link costs `1 / HOST_TRANSFER_SPEEDUP` of the
/// forward-pass work of recomputing that token.
///
/// This single deterministic constant is what makes swap-based
/// preemption/resume pay off in the cost model: re-prefilling an `S`-token
/// victim costs `S` work tokens, while promoting its offloaded page set costs
/// `pages · N_P / HOST_TRANSFER_SPEEDUP` — linear in the same context length
/// but divided by the link speedup. (Physically: a PCIe copy of a KV page is
/// far cheaper than re-running attention + FFN over the token span it holds.)
pub const HOST_TRANSFER_SPEEDUP: u64 = 64;

/// Modeled NVMe-link speed, relative to recompute — an order of magnitude
/// below [`HOST_TRANSFER_SPEEDUP`], so a host↔nvme hop for one page costs
/// `HOST_TRANSFER_SPEEDUP / NVME_TRANSFER_SPEEDUP` (= 8) times the host↔device
/// hop of the same page.
///
/// The pool prices NVMe hops by issuing them in *host-equivalent ledger
/// units* (`raw_units · HOST_TRANSFER_SPEEDUP / NVME_TRANSFER_SPEEDUP`, see
/// [`nvme_ledger_units`]), so every queue of the copy engine drains at one
/// common ledger rate and [`transfer_cost_tokens`] prices both hops without a
/// per-hop rate in the engine. Spilling to NVMe is still far cheaper than
/// recompute (`8 / 64` of a forward pass per token slot) — drop-and-replay
/// remains the fallback of last resort, not the preferred degradation.
pub const NVME_TRANSFER_SPEEDUP: u64 = 8;

/// Converts raw token-units of an NVMe hop into host-equivalent ledger units,
/// the currency of every copy-engine queue and migration counter.
pub fn nvme_ledger_units(raw_units: u64) -> u64 {
    raw_units * (HOST_TRANSFER_SPEEDUP / NVME_TRANSFER_SPEEDUP)
}

/// Converts accumulated migration ledger units (one unit per token slot of
/// every host-hop page, [`nvme_ledger_units`]-scaled for NVMe hops, as
/// returned by `PagePool::demote`/`promote`) into forward-pass
/// token-equivalents under [`HOST_TRANSFER_SPEEDUP`]. Rounds up so any
/// nonzero transfer carries nonzero modeled cost.
pub fn transfer_cost_tokens(token_units: u64) -> u64 {
    token_units.div_ceil(HOST_TRANSFER_SPEEDUP)
}

/// Lifetime tier-migration counters of the hierarchical page pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Pages moved hot → host.
    pub pages_demoted: u64,
    /// Pages moved host → hot.
    pub pages_promoted: u64,
    /// Pages spilled host → nvme.
    pub pages_spilled: u64,
    /// Pages recalled nvme → host.
    pub pages_recalled: u64,
    /// Ledger units carried hot → host (`pages_demoted · N_P`).
    pub demoted_token_units: u64,
    /// Ledger units carried host → hot (`pages_promoted · N_P`).
    pub promoted_token_units: u64,
    /// Ledger units carried host → nvme
    /// (`pages_spilled · nvme_ledger_units(N_P)`).
    pub spilled_token_units: u64,
    /// Ledger units carried nvme → host
    /// (`pages_recalled · nvme_ledger_units(N_P)`).
    pub recalled_token_units: u64,
}

impl TierStats {
    /// Ledger units moved across either link in either direction.
    pub fn migrated_token_units(&self) -> u64 {
        self.demoted_token_units
            + self.promoted_token_units
            + self.spilled_token_units
            + self.recalled_token_units
    }

    /// Total modeled migration cost in forward-pass token-equivalents.
    pub fn transfer_work_tokens(&self) -> u64 {
        transfer_cost_tokens(self.migrated_token_units())
    }
}

/// Channelwise minimum and maximum of the keys in one logical page.
///
/// These are the representative vectors of §3.5.2: the selector scores a logical page
/// against a query `q` as `Σ_i max(q[i]·kmax[i], q[i]·kmin[i])` (Eq. 2), an upper bound
/// on the best attainable dot product with any key in the page. They are computed
/// incrementally as tokens are appended ("pre-computed during the context stage and
/// previous decoding steps", Figure 7 caption).
///
/// # Example
///
/// ```
/// use lserve_kvcache::LogicalPageStats;
///
/// let mut s = LogicalPageStats::new(2);
/// s.update(&[1.0, -2.0]);
/// s.update(&[-1.0, 3.0]);
/// assert_eq!(s.kmin(), &[-1.0, -2.0]);
/// assert_eq!(s.kmax(), &[1.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPageStats {
    kmin: Vec<f32>,
    kmax: Vec<f32>,
    tokens: usize,
}

impl LogicalPageStats {
    /// Creates empty statistics for keys of dimension `head_dim`.
    pub fn new(head_dim: usize) -> Self {
        Self {
            kmin: vec![f32::INFINITY; head_dim],
            kmax: vec![f32::NEG_INFINITY; head_dim],
            tokens: 0,
        }
    }

    /// Folds one key row into the min/max bounds.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the configured head dimension.
    pub fn update(&mut self, key: &[f32]) {
        assert_eq!(key.len(), self.kmin.len(), "key dimension mismatch");
        for (i, &k) in key.iter().enumerate() {
            if k < self.kmin[i] {
                self.kmin[i] = k;
            }
            if k > self.kmax[i] {
                self.kmax[i] = k;
            }
        }
        self.tokens += 1;
    }

    /// Channelwise minima. All `+inf` while empty.
    pub fn kmin(&self) -> &[f32] {
        &self.kmin
    }

    /// Channelwise maxima. All `-inf` while empty.
    pub fn kmax(&self) -> &[f32] {
        &self.kmax
    }

    /// Number of keys folded in so far.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// True if no key has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.tokens == 0
    }

    /// Eq. 2 importance score of this logical page for query `q`:
    /// `Σ_i max(q[i]·kmax[i], q[i]·kmin[i])`.
    ///
    /// Returns `f32::NEG_INFINITY` for an empty page so empty pages never win
    /// selection.
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` differs from the head dimension.
    pub fn importance(&self, q: &[f32]) -> f32 {
        assert_eq!(q.len(), self.kmin.len(), "query dimension mismatch");
        if self.is_empty() {
            return f32::NEG_INFINITY;
        }
        let mut s = 0.0f32;
        for (i, &qi) in q.iter().enumerate() {
            s += (qi * self.kmax[i]).max(qi * self.kmin[i]);
        }
        s
    }

    /// Merges another page's bounds into this one (used by max-pooled physical
    /// summaries).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn merge(&mut self, other: &LogicalPageStats) {
        assert_eq!(self.kmin.len(), other.kmin.len(), "dimension mismatch");
        for i in 0..self.kmin.len() {
            self.kmin[i] = self.kmin[i].min(other.kmin[i]);
            self.kmax[i] = self.kmax[i].max(other.kmax[i]);
        }
        self.tokens += other.tokens;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_rounds_up_and_scales() {
        assert_eq!(transfer_cost_tokens(0), 0);
        assert_eq!(transfer_cost_tokens(1), 1, "nonzero transfer costs work");
        assert_eq!(transfer_cost_tokens(HOST_TRANSFER_SPEEDUP), 1);
        assert_eq!(transfer_cost_tokens(HOST_TRANSFER_SPEEDUP * 10), 10);
        let t = TierStats {
            pages_demoted: 2,
            demoted_token_units: 2 * 64,
            pages_promoted: 1,
            promoted_token_units: 64,
            ..Default::default()
        };
        assert_eq!(t.migrated_token_units(), 3 * 64);
        assert_eq!(t.transfer_work_tokens(), 3);
    }

    #[test]
    fn nvme_hop_costs_eight_host_hops() {
        assert_eq!(HOST_TRANSFER_SPEEDUP % NVME_TRANSFER_SPEEDUP, 0);
        assert_eq!(nvme_ledger_units(64), 8 * 64);
        assert_eq!(
            transfer_cost_tokens(nvme_ledger_units(64)),
            8 * transfer_cost_tokens(64),
            "one nvme page hop prices like eight host hops of the same page"
        );
        let t = TierStats {
            pages_spilled: 1,
            spilled_token_units: nvme_ledger_units(64),
            pages_recalled: 1,
            recalled_token_units: nvme_ledger_units(64),
            ..Default::default()
        };
        assert_eq!(t.migrated_token_units(), 2 * 8 * 64);
        assert_eq!(t.transfer_work_tokens(), 16);
    }

    #[test]
    fn update_tracks_min_max() {
        let mut s = LogicalPageStats::new(3);
        s.update(&[1.0, 0.0, -1.0]);
        s.update(&[0.5, 2.0, -3.0]);
        assert_eq!(s.kmin(), &[0.5, 0.0, -3.0]);
        assert_eq!(s.kmax(), &[1.0, 2.0, -1.0]);
        assert_eq!(s.tokens(), 2);
    }

    #[test]
    fn importance_is_upper_bound_on_member_dots() {
        let keys = [
            vec![0.3f32, -0.7, 1.2, 0.0],
            vec![-0.1, 0.9, 0.4, -2.0],
            vec![1.5, 0.2, -0.8, 0.6],
        ];
        let mut s = LogicalPageStats::new(4);
        for k in &keys {
            s.update(k);
        }
        let q = [0.7f32, -1.3, 0.2, 0.9];
        let bound = s.importance(&q);
        for k in &keys {
            let dot: f32 = q.iter().zip(k).map(|(a, b)| a * b).sum();
            assert!(dot <= bound + 1e-6, "dot {dot} exceeds bound {bound}");
        }
    }

    #[test]
    fn empty_page_scores_neg_infinity() {
        let s = LogicalPageStats::new(2);
        assert_eq!(s.importance(&[1.0, 1.0]), f32::NEG_INFINITY);
    }

    #[test]
    fn merge_equals_joint_update() {
        let mut a = LogicalPageStats::new(2);
        a.update(&[1.0, -1.0]);
        let mut b = LogicalPageStats::new(2);
        b.update(&[-2.0, 3.0]);
        let mut joint = LogicalPageStats::new(2);
        joint.update(&[1.0, -1.0]);
        joint.update(&[-2.0, 3.0]);
        a.merge(&b);
        assert_eq!(a, joint);
    }

    #[test]
    fn figure7_structure() {
        // Figure 7 structure: the query attends to the kmin/kmax representative
        // vectors of each logical page; score must equal the explicit
        // Σ_i max(q[i]·kmax[i], q[i]·kmin[i]) computed by hand.
        let q = [1.0f32, -2.0, 2.0, -2.0, 1.0, 1.0, 1.0, -3.0];
        let keys = [
            [6.0f32, 6.0, 8.0, 7.0, 8.0, 8.0, 7.0, -1.0],
            [-7.0, -4.0, -7.0, -5.0, -5.0, -5.0, -8.0, -5.0],
        ];
        let mut s = LogicalPageStats::new(8);
        for k in &keys {
            s.update(k);
        }
        let mut want = 0.0f32;
        for i in 0..8 {
            let kmax = keys[0][i].max(keys[1][i]);
            let kmin = keys[0][i].min(keys[1][i]);
            want += (q[i] * kmax).max(q[i] * kmin);
        }
        assert_eq!(s.importance(&q), want);
    }
}
