//! Page table of a dense (retrieval) head: full KV history with `K_stats`.

use crate::{MigrationDir, PageId, PagePool, Residency};

/// The KV history of one dense head: a page table over the full context, every page
/// carrying key statistics for dynamic page selection (Figure 5, "Dense Head Pages").
///
/// Pages are owned through the pool: the cache allocates on demand as tokens are
/// appended and frees all pages on [`DenseHeadCache::release`].
#[derive(Debug, Clone, Default)]
pub struct DenseHeadCache {
    pages: Vec<PageId>,
    tokens: usize,
}

impl DenseHeadCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total tokens stored.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// The page table (ordered physical pages covering tokens `0..tokens`).
    pub fn page_table(&self) -> &[PageId] {
        &self.pages
    }

    /// Number of physical pages in the table.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// True when appending the next token requires allocating a fresh page: the
    /// last page is full, no page exists yet, or the last page is *shared* (a
    /// prefix-cache entry or another sequence also references it) and must be
    /// copy-on-write forked before it can be written. Schedulers use this for
    /// exact page-demand reservation before a decode step.
    pub fn needs_page_for_next_append(&self, pool: &PagePool) -> bool {
        match self.pages.last() {
            Some(&id) => pool.page(id).is_full() || pool.is_shared(id),
            None => true,
        }
    }

    /// Appends one `(key, value)` row, allocating a new page when the last one is
    /// full and copy-on-write forking it first when it is shared with another
    /// owner (so shared prefix pages are never mutated).
    ///
    /// Returns `false` (leaving the cache unchanged) if the pool is exhausted.
    pub fn append(&mut self, pool: &mut PagePool, key: &[f32], value: &[f32]) -> bool {
        if let Some(&last) = self.pages.last() {
            if !pool.page(last).is_full() && pool.is_shared(last) {
                match pool.fork(last) {
                    Some(forked) => *self.pages.last_mut().expect("last checked") = forked,
                    None => return false,
                }
            }
        }
        let need_new = match self.pages.last() {
            Some(&id) => pool.page(id).is_full(),
            None => true,
        };
        if need_new {
            match pool.allocate() {
                Some(id) => self.pages.push(id),
                None => return false,
            }
        }
        let id = *self.pages.last().expect("page just ensured");
        pool.page_mut(id).append(key, value);
        self.tokens += 1;
        true
    }

    /// Appends a whole block of rows (used by prefill). Returns the number of rows
    /// actually appended (fewer than requested only if the pool is exhausted).
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != values.len()` or rows are not a multiple of
    /// `head_dim`.
    pub fn append_block(
        &mut self,
        pool: &mut PagePool,
        keys: &[f32],
        values: &[f32],
        head_dim: usize,
    ) -> usize {
        assert_eq!(keys.len(), values.len(), "key/value block size mismatch");
        assert_eq!(keys.len() % head_dim, 0, "block not a whole number of rows");
        let rows = keys.len() / head_dim;
        for r in 0..rows {
            let k = &keys[r * head_dim..(r + 1) * head_dim];
            let v = &values[r * head_dim..(r + 1) * head_dim];
            if !self.append(pool, k, v) {
                return r;
            }
        }
        rows
    }

    /// The global token index range `[start, end)` covered by physical page `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= num_pages()`.
    pub fn page_token_range(&self, pool: &PagePool, p: usize) -> (usize, usize) {
        assert!(p < self.pages.len(), "page index out of bounds");
        let np = pool.config().physical_page_size();
        let start = p * np;
        let end = start + pool.page(self.pages[p]).len();
        (start, end)
    }

    /// Reads the (dequantized) key row of global token `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tokens()`.
    pub fn key(&self, pool: &PagePool, t: usize) -> Vec<f32> {
        let np = pool.config().physical_page_size();
        pool.page(self.pages[t / np]).key_row(t % np).to_vec()
    }

    /// Reads the (dequantized) value row of global token `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tokens()`.
    pub fn value(&self, pool: &PagePool, t: usize) -> Vec<f32> {
        let np = pool.config().physical_page_size();
        pool.page(self.pages[t / np]).value_row(t % np).to_vec()
    }

    /// Frees every page back to the pool and clears the table.
    pub fn release(&mut self, pool: &mut PagePool) {
        for id in self.pages.drain(..) {
            pool.free(id);
        }
        self.tokens = 0;
    }

    /// Takes one additional reference on every page in the table (prefix sharing:
    /// the caller becomes a co-owner and must eventually `release` its copy of the
    /// table).
    pub fn retain_all(&self, pool: &mut PagePool) {
        for &id in &self.pages {
            pool.retain(id);
        }
    }

    /// True when at least one page in the table is referenced by this cache
    /// alone, i.e. releasing the cache would return physical pages to the pool.
    pub fn holds_sole_reference(&self, pool: &PagePool) -> bool {
        self.pages.iter().any(|&id| pool.refcount(id) == 1)
    }

    /// Demotes every sole-owned hot page of this head to the cold tier
    /// (swap-out). Co-owned pages stay hot for their other readers; already
    /// cold pages are skipped. Returns `(pages moved, token-units moved)`.
    pub fn demote_all(&self, pool: &mut PagePool) -> (u64, u64) {
        let mut pages = 0;
        let mut units = 0;
        for &id in &self.pages {
            if let Some(u) = pool.demote(id) {
                pages += 1;
                units += u;
            }
        }
        (pages, units)
    }

    /// Promotes every cold page of this head back to the hot tier (swap-in).
    /// Returns `(pages moved, token-units moved)`, or `None` if the hot tier
    /// filled up mid-way (pages promoted so far stay hot; callers reserve
    /// [`DenseHeadCache::cold_pages`] free slots first to rule this out).
    ///
    /// Every page goes through [`PagePool::promote`], so in-flight states are
    /// handled uniformly: hot and inbound pages cost `Some(0)`, an outbound
    /// page is recaptured for free, only genuinely cold pages move.
    pub fn promote_all(&self, pool: &mut PagePool) -> Option<(u64, u64)> {
        let mut pages = 0;
        let mut units = 0;
        for &id in &self.pages {
            match pool.promote(id)? {
                0 => {}
                u => {
                    pages += 1;
                    units += u;
                }
            }
        }
        Some((pages, units))
    }

    /// Makes every page of this head kernel-readable *now* (see
    /// [`PagePool::ensure_hot`]). Returns `(pages moved, token-units issued,
    /// token-units unhidden)`, or `None` if the hot tier filled up mid-way.
    pub fn ensure_resident(&self, pool: &mut PagePool) -> Option<(u64, u64, u64)> {
        let mut pages = 0;
        let mut units = 0;
        let mut unhidden = 0;
        for &id in &self.pages {
            let (u, uh) = pool.ensure_hot(id)?;
            if u > 0 {
                pages += 1;
            }
            units += u;
            unhidden += uh;
        }
        Some((pages, units, unhidden))
    }

    /// Number of this head's pages currently in the cold tier (the exact hot
    /// demand of a swap-in).
    pub fn cold_pages(&self, pool: &PagePool) -> usize {
        self.pages.iter().filter(|&&id| !pool.is_hot(id)).count()
    }

    /// Hot slots a swap-in of this head must newly claim: below-hot pages
    /// (cold, nvme, or in flight on the nvme hop) plus pages whose outbound
    /// transfer is still in flight. The latter look hot (their slot is
    /// occupied and the copy engine counts them reclaimable), but forcing one
    /// frees its slot *and* mints a new cold page — net-zero supply — so a
    /// resume reservation must carry them as demand.
    pub fn swap_in_demand(&self, pool: &PagePool) -> usize {
        self.pages
            .iter()
            .filter(|&&id| {
                matches!(
                    pool.residency(id),
                    Residency::Cold
                        | Residency::Migrating(MigrationDir::ToCold)
                        | Residency::Nvme
                        | Residency::MigratingNvme(_)
                )
            })
            .count()
    }

    /// Pages this head holds that are both sole-owned and hot — exactly what a
    /// swap-out ([`DenseHeadCache::demote_all`]) would move, and therefore the
    /// per-head transfer cost a cost-aware victim selector should charge.
    pub fn sole_owned_hot_pages(&self, pool: &PagePool) -> usize {
        self.pages
            .iter()
            .filter(|&&id| pool.refcount(id) == 1 && pool.is_hot(id))
            .count()
    }

    /// Modeled ledger units a victim of preemption would pay to bring this
    /// head fully hot again, by tier truth: shared hot pages are free (they
    /// never demote), sole-owned hot pages pay one future host round-trip
    /// half (`N_P` back up), host-resident pages pay the host hop, and
    /// nvme-family pages pay recall plus host hop. Victim selection ranks by
    /// this instead of raw page counts, so a sequence whose state sits deep
    /// in the hierarchy is not preferred over one that is cheap to restore.
    pub fn promote_back_cost_units(&self, pool: &PagePool) -> u64 {
        let np = pool.config().physical_page_size() as u64;
        let nvme_cost = crate::nvme_ledger_units(np) + np;
        self.pages
            .iter()
            .map(|&id| match pool.residency(id) {
                Residency::Hot | Residency::Migrating(_) => {
                    if pool.is_shared(id) {
                        0
                    } else {
                        np
                    }
                }
                Residency::Cold => np,
                Residency::Nvme | Residency::MigratingNvme(_) => nvme_cost,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PagingConfig;
    use lserve_quant::KvPrecision;

    fn setup() -> (PagePool, DenseHeadCache) {
        let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
        (PagePool::new(cfg, 16, 2), DenseHeadCache::new())
    }

    #[test]
    fn append_allocates_pages_on_demand() {
        let (mut pool, mut c) = setup();
        for i in 0..9 {
            assert!(c.append(&mut pool, &[i as f32, 0.0], &[0.0, i as f32]));
        }
        assert_eq!(c.tokens(), 9);
        assert_eq!(c.num_pages(), 3); // ceil(9/4)
        assert_eq!(pool.in_use(), 3);
    }

    #[test]
    fn key_value_round_trip_across_pages() {
        let (mut pool, mut c) = setup();
        for i in 0..10 {
            c.append(&mut pool, &[i as f32, -(i as f32)], &[2.0 * i as f32, 0.5]);
        }
        for i in 0..10 {
            assert_eq!(c.key(&pool, i), vec![i as f32, -(i as f32)]);
            assert_eq!(c.value(&pool, i), vec![2.0 * i as f32, 0.5]);
        }
    }

    #[test]
    fn page_token_range_covers_everything_once() {
        let (mut pool, mut c) = setup();
        for i in 0..7 {
            c.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]);
        }
        let mut covered = [false; 7];
        for p in 0..c.num_pages() {
            let (s, e) = c.page_token_range(&pool, p);
            for (t, slot) in covered.iter_mut().enumerate().take(e).skip(s) {
                assert!(!*slot, "token {t} covered twice");
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&x| x));
    }

    #[test]
    fn release_returns_capacity() {
        let (mut pool, mut c) = setup();
        for _ in 0..8 {
            c.append(&mut pool, &[0.0, 0.0], &[0.0, 0.0]);
        }
        assert_eq!(pool.in_use(), 2);
        c.release(&mut pool);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(c.tokens(), 0);
    }

    #[test]
    fn append_fails_cleanly_when_pool_exhausted() {
        let cfg = PagingConfig::new(2, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 1, 2);
        let mut c = DenseHeadCache::new();
        assert!(c.append(&mut pool, &[0.0, 0.0], &[0.0, 0.0]));
        assert!(c.append(&mut pool, &[0.0, 0.0], &[0.0, 0.0]));
        assert!(!c.append(&mut pool, &[0.0, 0.0], &[0.0, 0.0]));
        assert_eq!(c.tokens(), 2);
    }

    #[test]
    fn append_into_shared_partial_page_forks_first() {
        let (mut pool, mut c) = setup();
        for i in 0..6 {
            c.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]);
        }
        // Share the whole table (tree + this sequence), as a prefix-cache entry would.
        c.retain_all(&mut pool);
        let shared_last = *c.page_table().last().unwrap();
        assert!(c.needs_page_for_next_append(&pool), "shared page needs CoW");
        assert!(c.append(&mut pool, &[99.0, 0.0], &[0.0, 0.0]));
        let new_last = *c.page_table().last().unwrap();
        assert_ne!(new_last, shared_last, "partial page forked before append");
        // The shared copy is frozen at its pre-append contents.
        assert_eq!(pool.page(shared_last).len(), 2); // tokens 4..6 on page 1 (np=4)
        assert_eq!(pool.page(new_last).len(), 3);
        assert_eq!(pool.page(new_last).key_row(2)[0], 99.0);
        // Full pages stay shared untouched: only the partial page forked.
        assert_eq!(pool.refcount(c.page_table()[0]), 2);
        assert_eq!(pool.refcount(shared_last), 1, "tree now sole owner");
    }

    #[test]
    fn append_block_partial_on_exhaustion() {
        let cfg = PagingConfig::new(2, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 1, 2);
        let mut c = DenseHeadCache::new();
        let keys = vec![0.0f32; 6 * 2];
        let values = vec![0.0f32; 6 * 2];
        let n = c.append_block(&mut pool, &keys, &values, 2);
        assert_eq!(n, 2);
    }
}
