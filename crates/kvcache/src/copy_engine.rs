//! Modeled asynchronous copy engine for tier migrations.
//!
//! The tiered pool's `demote`/`promote` calls are synchronous in the baseline:
//! every transfer's full modeled cost lands on the decode critical path the
//! instant it is issued. Real serving systems overlap host↔device KV traffic
//! with compute on a separate copy stream; this module reproduces that overlap
//! *as a model*: transfers are issued into bounded per-direction queues, drain
//! at a fixed bandwidth ([`HOST_TRANSFER_SPEEDUP`] token-units per token of
//! compute overlapped), and only the fraction a consumer has to *wait* for is
//! charged as stall.
//!
//! Because this repository models costs rather than moving bytes, page
//! contents are always readable through the pool regardless of residency; the
//! engine only changes *when* hot-tier slots change hands and *how much* of
//! each transfer's cost is hidden. That is exactly why
//! [`MigrationMode::Sync`] and [`MigrationMode::Async`] produce bit-identical
//! outputs: the numerics never depend on the mode, only the modeled latency
//! accounting does.

use std::collections::VecDeque;

use crate::pool::PageId;
use crate::stats::transfer_cost_tokens;

/// Depth of each per-direction transfer queue. Issuing into a full queue
/// force-completes the oldest transfer first (the modeled equivalent of
/// blocking on a full copy-stream ring buffer), so the queue bounds in-flight
/// state without ever rejecting a migration.
pub const COPY_CHANNEL_DEPTH: usize = 16;

/// Whether tier migrations complete inline (the baseline) or drain through the
/// modeled copy engine overlapped with compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationMode {
    /// Every `demote`/`promote` completes at issue and its full transfer cost
    /// is charged to the issuing step — the pre-copy-engine behaviour.
    #[default]
    Sync,
    /// Transfers are queued on the copy engine and drain overlapped with
    /// compute; only the unhidden remainder of demand-forced transfers is
    /// charged as stall. Outputs are bit-identical to [`MigrationMode::Sync`].
    Async,
}

/// Default migration mode from the `LSERVE_MIGRATION` environment variable
/// (`sync` | `async`, defaulting to sync; unknown values fall back to sync).
///
/// Read on every call — deliberately *not* cached in a process-wide
/// `OnceLock` — so tests and benches can vary the knob in-process;
/// constructors ([`crate::PagePool::new_with_migration`] callers such as the
/// scheduler config) read it once and pin the result. CI runs the test suite
/// under both values, so the determinism suite exercises the overlapped
/// migration path on every push.
pub fn migration_from_env() -> MigrationMode {
    match std::env::var("LSERVE_MIGRATION")
        .unwrap_or_default()
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "async" => MigrationMode::Async,
        _ => MigrationMode::Sync,
    }
}

/// Direction of an in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationDir {
    /// Away from the hot tier (demotion on the host hop, spill on the nvme
    /// hop).
    ToCold,
    /// Toward the hot tier (promotion on the host hop, recall on the nvme
    /// hop).
    ToHot,
}

/// Which link of the memory hierarchy a transfer crosses. Each hop has its own
/// pair of FIFO channels (one per [`MigrationDir`]), modeling independent DMA
/// links: device↔host traffic never queues behind host↔nvme traffic.
///
/// All four channels drain in common *ledger units* (host-equivalent
/// token-units; NVMe hops are issued pre-scaled by
/// [`nvme_ledger_units`](crate::nvme_ledger_units)), so the engine needs no
/// per-hop rate — the NVMe hop's order-of-magnitude slowdown shows up as
/// more ledger units per page, not a slower drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// The device↔host link (demote / promote).
    Host,
    /// The host↔nvme link (spill / recall).
    Nvme,
}

/// One queued transfer.
#[derive(Debug, Clone)]
struct Transfer {
    page: PageId,
    /// Token-units still to drain before the transfer lands.
    remaining: u64,
    /// Issued by the prefetcher (speculative) rather than by demand.
    prefetch: bool,
}

/// Lifetime counters of the copy engine, separating the transfer cost compute
/// absorbed from the cost that stalled a consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationStats {
    /// Speculative promotions issued by the selector-driven prefetcher.
    pub prefetch_issued: u64,
    /// Prefetched pages later touched by demand (the prefetch paid off).
    pub prefetch_hits: u64,
    /// Prefetched pages demoted or freed before any demand touch.
    pub prefetch_wasted: u64,
    /// Token-units drained by overlapped bandwidth — cost hidden behind
    /// compute.
    pub hidden_token_units: u64,
    /// Token-units force-completed on demand — cost a consumer waited for.
    /// In [`MigrationMode::Sync`] every migrated unit lands here, so the
    /// stall metric is comparable across modes.
    pub unhidden_token_units: u64,
    /// Token-units of cancelled transfers (pages freed or re-targeted while
    /// in flight); charged to neither bucket.
    pub cancelled_token_units: u64,
    /// Transfers force-completed because a consumer (or a full queue) needed
    /// them immediately.
    pub forced_completions: u64,
}

impl MigrationStats {
    /// Modeled stall, in forward-pass token-equivalents: the transfer work a
    /// consumer actually waited for. Sync mode charges every migration here.
    pub fn migration_stall_tokens(&self) -> u64 {
        transfer_cost_tokens(self.unhidden_token_units)
    }

    /// Transfer work absorbed by overlap, in forward-pass token-equivalents.
    pub fn hidden_transfer_tokens(&self) -> u64 {
        transfer_cost_tokens(self.hidden_token_units)
    }

    /// Fraction of completed transfer traffic hidden behind compute, in
    /// `[0, 1]` (1.0 when no transfer completed — nothing stalled).
    pub fn overlap_ratio(&self) -> f64 {
        let total = self.hidden_token_units + self.unhidden_token_units;
        if total == 0 {
            return 1.0;
        }
        self.hidden_token_units as f64 / total as f64
    }
}

/// Bounded-queue modeled copy engine: four FIFO channels ([`Hop`] ×
/// [`MigrationDir`]), each draining
/// [`HOST_TRANSFER_SPEEDUP`](crate::HOST_TRANSFER_SPEEDUP) ledger units per
/// overlapped compute token fed to [`CopyEngine::advance`].
///
/// The engine tracks queue state only; the pool owns residency, slot counts,
/// and [`MigrationStats`], reacting to the [`PageId`]s this engine reports as
/// landed, forced, or cancelled. The [`MigrationDir`]-only methods are
/// host-hop shorthands kept for the two-tier call sites; the `_hop` variants
/// address all four channels.
#[derive(Debug, Clone, Default)]
pub struct CopyEngine {
    d2h: VecDeque<Transfer>,
    h2d: VecDeque<Transfer>,
    h2n: VecDeque<Transfer>,
    n2h: VecDeque<Transfer>,
}

impl CopyEngine {
    fn queue(&self, hop: Hop, dir: MigrationDir) -> &VecDeque<Transfer> {
        match (hop, dir) {
            (Hop::Host, MigrationDir::ToCold) => &self.d2h,
            (Hop::Host, MigrationDir::ToHot) => &self.h2d,
            (Hop::Nvme, MigrationDir::ToCold) => &self.h2n,
            (Hop::Nvme, MigrationDir::ToHot) => &self.n2h,
        }
    }

    fn queue_mut(&mut self, hop: Hop, dir: MigrationDir) -> &mut VecDeque<Transfer> {
        match (hop, dir) {
            (Hop::Host, MigrationDir::ToCold) => &mut self.d2h,
            (Hop::Host, MigrationDir::ToHot) => &mut self.h2d,
            (Hop::Nvme, MigrationDir::ToCold) => &mut self.h2n,
            (Hop::Nvme, MigrationDir::ToHot) => &mut self.n2h,
        }
    }

    /// Transfers currently in flight on the host hop in `dir`.
    pub fn in_flight(&self, dir: MigrationDir) -> usize {
        self.in_flight_hop(Hop::Host, dir)
    }

    /// Transfers currently in flight on `hop` in `dir`.
    pub fn in_flight_hop(&self, hop: Hop, dir: MigrationDir) -> usize {
        self.queue(hop, dir).len()
    }

    /// True when the host-hop queue in `dir` is at [`COPY_CHANNEL_DEPTH`].
    pub fn is_full(&self, dir: MigrationDir) -> bool {
        self.is_full_hop(Hop::Host, dir)
    }

    /// True when `hop`'s queue in `dir` is at [`COPY_CHANNEL_DEPTH`].
    pub fn is_full_hop(&self, hop: Hop, dir: MigrationDir) -> bool {
        self.in_flight_hop(hop, dir) >= COPY_CHANNEL_DEPTH
    }

    /// Whether `page` is in flight on the host hop in `dir`.
    pub fn contains(&self, dir: MigrationDir, page: PageId) -> bool {
        self.contains_hop(Hop::Host, dir, page)
    }

    /// Whether `page` is in flight on `hop` in `dir`.
    pub fn contains_hop(&self, hop: Hop, dir: MigrationDir, page: PageId) -> bool {
        self.queue(hop, dir).iter().any(|t| t.page == page)
    }

    /// Queues a host-hop transfer. The caller must have drained a full queue
    /// first (see [`CopyEngine::force_head`]).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or the page is already in flight in `dir`.
    pub fn issue(&mut self, dir: MigrationDir, page: PageId, units: u64, prefetch: bool) {
        self.issue_hop(Hop::Host, dir, page, units, prefetch);
    }

    /// Queues a transfer on `hop`. `units` are ledger units (pre-scaled for
    /// the NVMe hop). The caller must have drained a full queue first.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or the page is already in flight on
    /// `(hop, dir)`.
    pub fn issue_hop(
        &mut self,
        hop: Hop,
        dir: MigrationDir,
        page: PageId,
        units: u64,
        prefetch: bool,
    ) {
        assert!(!self.is_full_hop(hop, dir), "copy queue overfull");
        assert!(!self.contains_hop(hop, dir, page), "page already in flight");
        self.queue_mut(hop, dir).push_back(Transfer {
            page,
            remaining: units,
            prefetch,
        });
    }

    /// Drains up to `units` ledger units from each of the four channels
    /// independently (each hop × direction models a separate DMA link),
    /// oldest transfer first. Returns `(landed pages per channel, total units
    /// drained)`; the pool applies residency flips for landed transfers and
    /// credits the drained units as hidden.
    pub fn advance(&mut self, units: u64) -> (Vec<(Hop, MigrationDir, PageId)>, u64) {
        let mut landed = Vec::new();
        let mut drained = 0;
        for hop in [Hop::Host, Hop::Nvme] {
            for dir in [MigrationDir::ToCold, MigrationDir::ToHot] {
                let mut budget = units;
                let q = self.queue_mut(hop, dir);
                while budget > 0 {
                    let Some(head) = q.front_mut() else { break };
                    let step = head.remaining.min(budget);
                    head.remaining -= step;
                    budget -= step;
                    drained += step;
                    if head.remaining == 0 {
                        let t = q.pop_front().expect("head exists");
                        landed.push((hop, dir, t.page));
                    }
                }
            }
        }
        (landed, drained)
    }

    /// Force-completes the oldest host-hop transfer in `dir` (a consumer
    /// needs its slot or queue entry *now*). Returns the landed page, its
    /// unhidden remainder, and whether it was a prefetch.
    pub fn force_head(&mut self, dir: MigrationDir) -> Option<(PageId, u64, bool)> {
        self.force_head_hop(Hop::Host, dir)
    }

    /// Force-completes the oldest transfer on `hop` in `dir`.
    pub fn force_head_hop(&mut self, hop: Hop, dir: MigrationDir) -> Option<(PageId, u64, bool)> {
        self.queue_mut(hop, dir)
            .pop_front()
            .map(|t| (t.page, t.remaining, t.prefetch))
    }

    /// Force-completes the *cheapest* host-hop transfer in `dir` — fewest
    /// remaining ledger units, front-most on a tie (the FIFO drain order
    /// keeps the choice deterministic). Used by hot-slot reclaim to minimize
    /// the forced-unhidden charge: the oldest transfer may have been issued
    /// large while a younger one is nearly drained. Returns the landed page,
    /// its unhidden remainder, and whether it was a prefetch.
    pub fn force_cheapest(&mut self, dir: MigrationDir) -> Option<(PageId, u64, bool)> {
        self.force_cheapest_hop(Hop::Host, dir)
    }

    /// Force-completes the cheapest transfer on `hop` in `dir` (fewest
    /// remaining units, front-most on a tie).
    pub fn force_cheapest_hop(
        &mut self,
        hop: Hop,
        dir: MigrationDir,
    ) -> Option<(PageId, u64, bool)> {
        let q = self.queue_mut(hop, dir);
        let pos = q
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (t.remaining, *i))?
            .0;
        let t = q.remove(pos).expect("position exists");
        Some((t.page, t.remaining, t.prefetch))
    }

    /// Force-completes `page`'s in-flight host-hop transfer in `dir`. Returns
    /// the unhidden remainder and whether it was a prefetch.
    pub fn force_page(&mut self, dir: MigrationDir, page: PageId) -> Option<(u64, bool)> {
        self.force_page_hop(Hop::Host, dir, page)
    }

    /// Force-completes `page`'s in-flight transfer on `hop` in `dir`.
    pub fn force_page_hop(
        &mut self,
        hop: Hop,
        dir: MigrationDir,
        page: PageId,
    ) -> Option<(u64, bool)> {
        let q = self.queue_mut(hop, dir);
        let pos = q.iter().position(|t| t.page == page)?;
        let t = q.remove(pos).expect("position exists");
        Some((t.remaining, t.prefetch))
    }

    /// Cancels `page`'s in-flight host-hop transfer in `dir` without landing
    /// it (the page was freed, or the migration re-targeted). Returns the
    /// cancelled remainder and whether it was a prefetch.
    pub fn cancel(&mut self, dir: MigrationDir, page: PageId) -> Option<(u64, bool)> {
        self.force_page(dir, page)
    }

    /// Cancels `page`'s in-flight transfer on `hop` in `dir` without landing
    /// it.
    pub fn cancel_hop(&mut self, hop: Hop, dir: MigrationDir, page: PageId) -> Option<(u64, bool)> {
        self.force_page_hop(hop, dir, page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> PageId {
        PageId(i)
    }

    #[test]
    fn env_knob_parses() {
        // Whatever the ambient env says, the parser itself is what's under
        // test; drive it through the documented strings.
        assert_eq!(MigrationMode::default(), MigrationMode::Sync);
    }

    #[test]
    fn advance_drains_fifo_and_lands_in_order() {
        let mut e = CopyEngine::default();
        e.issue(MigrationDir::ToCold, pid(0), 10, false);
        e.issue(MigrationDir::ToCold, pid(1), 4, false);
        let (landed, drained) = e.advance(6);
        assert_eq!(drained, 6);
        assert!(landed.is_empty(), "head still has 4 units left");
        let (landed, drained) = e.advance(10);
        assert_eq!(drained, 8);
        assert_eq!(
            landed,
            vec![
                (Hop::Host, MigrationDir::ToCold, pid(0)),
                (Hop::Host, MigrationDir::ToCold, pid(1))
            ]
        );
        assert_eq!(e.in_flight(MigrationDir::ToCold), 0);
    }

    #[test]
    fn directions_drain_independently() {
        let mut e = CopyEngine::default();
        e.issue(MigrationDir::ToCold, pid(0), 8, false);
        e.issue(MigrationDir::ToHot, pid(1), 8, false);
        let (landed, drained) = e.advance(8);
        assert_eq!(drained, 16, "each direction gets its own budget");
        assert_eq!(landed.len(), 2);
    }

    #[test]
    fn hops_drain_independently_and_land_host_first() {
        let mut e = CopyEngine::default();
        e.issue_hop(Hop::Nvme, MigrationDir::ToCold, pid(0), 8, false);
        e.issue_hop(Hop::Host, MigrationDir::ToCold, pid(1), 8, false);
        e.issue_hop(Hop::Nvme, MigrationDir::ToHot, pid(2), 8, false);
        assert_eq!(e.in_flight(MigrationDir::ToCold), 1, "host hop only");
        assert_eq!(e.in_flight_hop(Hop::Nvme, MigrationDir::ToCold), 1);
        let (landed, drained) = e.advance(8);
        assert_eq!(drained, 24, "each of the four channels has its own budget");
        // Landing order is deterministic: host channels first, ToCold before
        // ToHot within a hop.
        assert_eq!(
            landed,
            vec![
                (Hop::Host, MigrationDir::ToCold, pid(1)),
                (Hop::Nvme, MigrationDir::ToCold, pid(0)),
                (Hop::Nvme, MigrationDir::ToHot, pid(2)),
            ]
        );
    }

    #[test]
    fn same_page_may_be_in_flight_on_distinct_hops_only() {
        let mut e = CopyEngine::default();
        e.issue_hop(Hop::Host, MigrationDir::ToCold, pid(5), 4, false);
        assert!(e.contains_hop(Hop::Host, MigrationDir::ToCold, pid(5)));
        assert!(!e.contains_hop(Hop::Nvme, MigrationDir::ToCold, pid(5)));
        e.issue_hop(Hop::Nvme, MigrationDir::ToHot, pid(5), 32, false);
        assert_eq!(
            e.cancel_hop(Hop::Nvme, MigrationDir::ToHot, pid(5)),
            Some((32, false))
        );
        assert_eq!(e.force_page(MigrationDir::ToCold, pid(5)), Some((4, false)));
    }

    #[test]
    fn force_cheapest_prefers_fewest_remaining_units() {
        let mut e = CopyEngine::default();
        e.issue(MigrationDir::ToCold, pid(0), 12, false);
        e.issue(MigrationDir::ToCold, pid(1), 3, false);
        e.issue(MigrationDir::ToCold, pid(2), 7, false);
        // Not the oldest (pid 0, 12 units left) but the cheapest (pid 1, 3).
        let (page, rem, _) = e.force_cheapest(MigrationDir::ToCold).unwrap();
        assert_eq!((page, rem), (pid(1), 3));
        // After draining 5 units FIFO, pid 0 has 7 left — tied with pid 2;
        // the front-most (oldest) wins the tie deterministically.
        let (_, drained) = e.advance(5);
        assert_eq!(drained, 5);
        let (page, rem, _) = e.force_cheapest(MigrationDir::ToCold).unwrap();
        assert_eq!((page, rem), (pid(0), 7));
        let (page, _, _) = e.force_cheapest(MigrationDir::ToCold).unwrap();
        assert_eq!(page, pid(2));
        assert!(e.force_cheapest(MigrationDir::ToCold).is_none());
    }

    #[test]
    fn force_page_returns_remainder() {
        let mut e = CopyEngine::default();
        e.issue(MigrationDir::ToHot, pid(3), 12, true);
        let (_, _) = e.advance(5);
        assert_eq!(e.force_page(MigrationDir::ToHot, pid(3)), Some((7, true)));
        assert_eq!(e.force_page(MigrationDir::ToHot, pid(3)), None);
    }

    #[test]
    fn full_queue_reports_full() {
        let mut e = CopyEngine::default();
        for i in 0..COPY_CHANNEL_DEPTH {
            e.issue(MigrationDir::ToCold, pid(i as u32), 1, false);
        }
        assert!(e.is_full(MigrationDir::ToCold));
        assert!(!e.is_full(MigrationDir::ToHot));
        let (page, rem, _) = e.force_head(MigrationDir::ToCold).unwrap();
        assert_eq!(page, pid(0));
        assert_eq!(rem, 1);
        assert!(!e.is_full(MigrationDir::ToCold));
    }

    #[test]
    fn overlap_ratio_bounds() {
        let empty = MigrationStats::default();
        assert_eq!(empty.overlap_ratio(), 1.0, "no traffic, nothing stalled");
        let mixed = MigrationStats {
            hidden_token_units: 192,
            unhidden_token_units: 64,
            ..Default::default()
        };
        assert!((mixed.overlap_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(mixed.migration_stall_tokens(), 1);
        assert_eq!(mixed.hidden_transfer_tokens(), 3);
    }
}
