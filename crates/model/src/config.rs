//! Architectural shape presets for the paper's evaluation models.

/// Transformer architecture shapes.
///
/// The presets reproduce the published architectures of the three models the paper
/// evaluates; [`ModelConfig::tiny`] and [`ModelConfig::scaled_down`] keep the
/// attention geometry while shrinking everything orthogonal to it, for CPU-runnable
/// tests and examples.
///
/// # Example
///
/// ```
/// use lserve_model::ModelConfig;
///
/// let cfg = ModelConfig::llama3_8b();
/// assert_eq!(cfg.gqa_group_size(), 4); // 32 query heads over 8 KV heads
/// assert!(ModelConfig::llama2_7b().is_mha());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name used in benchmark output.
    pub name: String,
    /// Transformer layer count.
    pub num_layers: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Query head count `H`.
    pub num_q_heads: usize,
    /// KV head count `Ĥ` (`== H` for MHA).
    pub num_kv_heads: usize,
    /// Per-head dimension `D`.
    pub head_dim: usize,
    /// FFN intermediate dimension.
    pub ffn_hidden: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// RoPE base frequency.
    pub rope_base: f32,
}

impl ModelConfig {
    /// Llama-3-8B: 32 layers, GQA with 32 query / 8 KV heads of dim 128.
    pub fn llama3_8b() -> Self {
        Self {
            name: "Llama-3-8B".into(),
            num_layers: 32,
            hidden: 4096,
            num_q_heads: 32,
            num_kv_heads: 8,
            head_dim: 128,
            ffn_hidden: 14336,
            vocab: 128_256,
            rope_base: 500_000.0,
        }
    }

    /// Llama-2-7B: 32 layers, MHA with 32 heads of dim 128.
    pub fn llama2_7b() -> Self {
        Self {
            name: "Llama-2-7B".into(),
            num_layers: 32,
            hidden: 4096,
            num_q_heads: 32,
            num_kv_heads: 32,
            head_dim: 128,
            ffn_hidden: 11008,
            vocab: 32_000,
            rope_base: 10_000.0,
        }
    }

    /// Minitron-4B: 32 layers, GQA with 24 query / 8 KV heads of dim 128
    /// (Muralidharan et al., 2024).
    pub fn minitron_4b() -> Self {
        Self {
            name: "Minitron-4B".into(),
            num_layers: 32,
            hidden: 3072,
            num_q_heads: 24,
            num_kv_heads: 8,
            head_dim: 128,
            ffn_hidden: 9216,
            vocab: 256_000,
            rope_base: 10_000.0,
        }
    }

    /// A minimal config for unit tests: 2 layers, 4 query / 2 KV heads of dim 8.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            num_layers: 2,
            hidden: 32,
            num_q_heads: 4,
            num_kv_heads: 2,
            head_dim: 8,
            ffn_hidden: 64,
            vocab: 97,
            rope_base: 10_000.0,
        }
    }

    /// Shrinks a preset for CPU execution while keeping the per-layer *attention
    /// geometry* (head counts and head dim) intact, which is what the paper's
    /// sparsity mechanisms act on. Layer count, FFN and vocab shrink.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn scaled_down(&self, layers: usize) -> Self {
        assert!(layers > 0, "need at least one layer");
        Self {
            name: format!("{}-mini{}", self.name, layers),
            num_layers: layers,
            hidden: self.num_q_heads * self.head_dim,
            num_q_heads: self.num_q_heads,
            num_kv_heads: self.num_kv_heads,
            head_dim: self.head_dim,
            ffn_hidden: 2 * self.num_q_heads * self.head_dim,
            vocab: 1024,
            rope_base: self.rope_base,
        }
    }

    /// Query heads per KV head.
    ///
    /// # Panics
    ///
    /// Panics if `num_q_heads` is not divisible by `num_kv_heads`.
    pub fn gqa_group_size(&self) -> usize {
        assert_eq!(
            self.num_q_heads % self.num_kv_heads,
            0,
            "invalid GQA grouping"
        );
        self.num_q_heads / self.num_kv_heads
    }

    /// True for multi-head attention (no KV sharing).
    pub fn is_mha(&self) -> bool {
        self.num_q_heads == self.num_kv_heads
    }

    /// Width of the concatenated query projection (`H·D`).
    pub fn q_width(&self) -> usize {
        self.num_q_heads * self.head_dim
    }

    /// Width of the concatenated key/value projections (`Ĥ·D`).
    pub fn kv_width(&self) -> usize {
        self.num_kv_heads * self.head_dim
    }

    /// Bytes of FP16 KV cache per token across all layers (`2 · L · Ĥ · D · 2`).
    pub fn kv_bytes_per_token_fp16(&self) -> f64 {
        2.0 * self.num_layers as f64 * self.kv_width() as f64 * 2.0
    }

    /// Approximate parameter count (embeddings + per-layer projections + FFN).
    pub fn approx_params(&self) -> f64 {
        let per_layer = (self.hidden * self.q_width())
            + 2 * (self.hidden * self.kv_width())
            + (self.q_width() * self.hidden)
            + 3 * (self.hidden * self.ffn_hidden);
        (self.vocab * self.hidden * 2 + self.num_layers * per_layer) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama3_shapes() {
        let c = ModelConfig::llama3_8b();
        assert_eq!(c.q_width(), 4096);
        assert_eq!(c.kv_width(), 1024);
        assert_eq!(c.gqa_group_size(), 4);
        assert!(!c.is_mha());
        // ~8B params within a factor.
        assert!(c.approx_params() > 6e9 && c.approx_params() < 10e9);
    }

    #[test]
    fn llama2_is_mha() {
        let c = ModelConfig::llama2_7b();
        assert!(c.is_mha());
        assert_eq!(c.gqa_group_size(), 1);
        assert!(c.approx_params() > 5e9 && c.approx_params() < 8e9);
    }

    #[test]
    fn minitron_is_smaller() {
        let a = ModelConfig::minitron_4b().approx_params();
        let b = ModelConfig::llama3_8b().approx_params();
        assert!(a < b);
    }

    #[test]
    fn kv_bytes_per_token_llama3() {
        // 2 (K,V) * 32 layers * 1024 width * 2 bytes = 128 KiB/token.
        let c = ModelConfig::llama3_8b();
        assert_eq!(c.kv_bytes_per_token_fp16(), 131072.0);
    }

    #[test]
    fn scaled_down_keeps_attention_geometry() {
        let full = ModelConfig::llama3_8b();
        let mini = full.scaled_down(2);
        assert_eq!(mini.num_q_heads, full.num_q_heads);
        assert_eq!(mini.num_kv_heads, full.num_kv_heads);
        assert_eq!(mini.head_dim, full.head_dim);
        assert_eq!(mini.num_layers, 2);
        assert!(mini.approx_params() < full.approx_params() / 10.0);
    }

    #[test]
    fn tiny_is_valid() {
        let c = ModelConfig::tiny();
        assert_eq!(c.hidden, c.q_width());
        assert_eq!(c.gqa_group_size(), 2);
    }
}
