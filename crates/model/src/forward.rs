//! Layer building blocks and a cache-free reference forward pass.
//!
//! Serving engines (in `lserve-core`) compose these blocks with their own attention
//! kernels and paged KV caches; the [`reference_forward_full`] path recomputes
//! attention naively over the whole sequence and is the ground truth that engine
//! tests compare against.

use lserve_tensor::rope::RopeTable;
use lserve_tensor::{argmax, rms_norm, silu, softmax_in_place, Matrix};

use crate::{LayerWeights, ModelConfig, ModelWeights};

/// Post-RoPE query/key/value activations of one layer for a token block.
#[derive(Debug, Clone)]
pub struct LayerActivations {
    /// Queries, `(N x H·D)`.
    pub q: Matrix,
    /// Keys, `(N x Ĥ·D)`.
    pub k: Matrix,
    /// Values, `(N x Ĥ·D)`.
    pub v: Matrix,
}

const RMS_EPS: f32 = 1e-5;

/// Applies RoPE to every head slice of a `(N x heads·D)` activation block, where row
/// `t` is at absolute position `start_pos + t`.
fn rope_heads(m: &mut Matrix, heads: usize, head_dim: usize, rope: &RopeTable, start_pos: usize) {
    for r in 0..m.rows() {
        let pos = start_pos + r;
        let row = m.row_mut(r);
        for h in 0..heads {
            rope.apply(&mut row[h * head_dim..(h + 1) * head_dim], pos);
        }
    }
}

/// Pre-attention block: RMSNorm then QKV projections with RoPE applied.
///
/// `x` is the residual-stream input `(N x hidden)`; rows are tokens at absolute
/// positions `start_pos..start_pos+N`.
pub fn pre_attention(
    cfg: &ModelConfig,
    lw: &LayerWeights,
    x: &Matrix,
    start_pos: usize,
    rope: &RopeTable,
) -> LayerActivations {
    let mut normed = x.clone();
    rms_norm(&mut normed, &lw.attn_norm, RMS_EPS);
    let mut q = normed.matmul(&lw.wq);
    let mut k = normed.matmul(&lw.wk);
    let v = normed.matmul(&lw.wv);
    rope_heads(&mut q, cfg.num_q_heads, cfg.head_dim, rope, start_pos);
    rope_heads(&mut k, cfg.num_kv_heads, cfg.head_dim, rope, start_pos);
    LayerActivations { q, k, v }
}

/// Post-attention block: output projection plus residual connection.
///
/// Returns `x + attn_out · W_o`.
pub fn post_attention(lw: &LayerWeights, x: &Matrix, attn_out: &Matrix) -> Matrix {
    let mut out = attn_out.matmul(&lw.wo);
    out.add_assign(x);
    out
}

/// SwiGLU FFN block with pre-norm and residual: `x + W_down(SiLU(xW_gate) ⊙ xW_up)`.
pub fn ffn_block(lw: &LayerWeights, x: &Matrix) -> Matrix {
    let mut normed = x.clone();
    rms_norm(&mut normed, &lw.ffn_norm, RMS_EPS);
    let mut gate = normed.matmul(&lw.w_gate);
    let up = normed.matmul(&lw.w_up);
    silu(gate.as_mut_slice());
    for (g, u) in gate.as_mut_slice().iter_mut().zip(up.as_slice()) {
        *g *= u;
    }
    let mut out = gate.matmul(&lw.w_down);
    out.add_assign(x);
    out
}

/// Final norm + LM head over the given hidden rows, returning `(N x vocab)` logits.
pub fn logits(weights: &ModelWeights, x: &Matrix) -> Matrix {
    let mut normed = x.clone();
    rms_norm(&mut normed, &weights.final_norm, RMS_EPS);
    normed.matmul(&weights.lm_head)
}

/// Greedy (argmax) sampling from one logits row.
///
/// # Panics
///
/// Panics if `row` is empty.
pub fn greedy_next_token(row: &[f32]) -> u32 {
    argmax(row) as u32
}

/// Naive per-head causal attention (quadratic, no cache) — internal to the reference
/// path; engines use the block-sparse kernels instead.
fn naive_layer_attention(cfg: &ModelConfig, acts: &LayerActivations) -> Matrix {
    let n = acts.q.rows();
    let d = cfg.head_dim;
    let scale = 1.0 / (d as f32).sqrt();
    let group = cfg.gqa_group_size();
    let mut out = Matrix::zeros(n, cfg.q_width());
    for h in 0..cfg.num_q_heads {
        let kv = h / group;
        let mut scores = Matrix::zeros(n, n);
        for i in 0..n {
            let qi = &acts.q.row(i)[h * d..(h + 1) * d];
            for j in 0..=i {
                let kj = &acts.k.row(j)[kv * d..(kv + 1) * d];
                let mut s = 0.0f32;
                for (a, b) in qi.iter().zip(kj) {
                    s += a * b;
                }
                scores[(i, j)] = s * scale;
            }
            for j in (i + 1)..n {
                scores[(i, j)] = f32::NEG_INFINITY;
            }
        }
        softmax_in_place(&mut scores);
        for i in 0..n {
            let orow = &mut out.row_mut(i)[h * d..(h + 1) * d];
            for j in 0..=i {
                let w = scores[(i, j)];
                if w == 0.0 {
                    continue;
                }
                let vj = &acts.v.row(j)[kv * d..(kv + 1) * d];
                for (o, x) in orow.iter_mut().zip(vj) {
                    *o += w * x;
                }
            }
        }
    }
    out
}

/// Cache-free full forward pass: embeds `tokens`, runs every layer with naive dense
/// causal attention, and returns the `(N x vocab)` logits.
///
/// Ground truth for engine tests: a serving engine with sparsity disabled must
/// reproduce these logits to float tolerance.
///
/// # Panics
///
/// Panics if `tokens` is empty or contains out-of-vocabulary ids.
pub fn reference_forward_full(weights: &ModelWeights, tokens: &[u32]) -> Matrix {
    assert!(!tokens.is_empty(), "empty token sequence");
    let cfg = &weights.config;
    let rope = RopeTable::new(cfg.head_dim, cfg.rope_base);
    let mut x = weights.embed_tokens(tokens);
    for lw in &weights.layers {
        let acts = pre_attention(cfg, lw, &x, 0, &rope);
        let attn = naive_layer_attention(cfg, &acts);
        x = post_attention(lw, &x, &attn);
        x = ffn_block(lw, &x);
    }
    logits(weights, &x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModelWeights {
        ModelWeights::random(&ModelConfig::tiny(), 42)
    }

    #[test]
    fn reference_forward_shapes() {
        let w = tiny();
        let out = reference_forward_full(&w, &[1, 2, 3, 4]);
        assert_eq!(out.shape(), (4, w.config.vocab));
    }

    #[test]
    fn causality_prefix_logits_are_stable() {
        // Extending the sequence must not change logits of earlier positions.
        let w = tiny();
        let a = reference_forward_full(&w, &[5, 6, 7]);
        let b = reference_forward_full(&w, &[5, 6, 7, 8, 9]);
        for r in 0..3 {
            for c in 0..w.config.vocab {
                assert!((a[(r, c)] - b[(r, c)]).abs() < 1e-4, "pos {r} changed");
            }
        }
    }

    #[test]
    fn activations_stay_bounded() {
        let w = tiny();
        let out = reference_forward_full(&w, &[0; 16]);
        let max = out.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(max.is_finite() && max < 1e3, "activations exploded: {max}");
    }

    #[test]
    fn greedy_decoding_is_deterministic() {
        let w = tiny();
        let l1 = reference_forward_full(&w, &[1, 2, 3]);
        let l2 = reference_forward_full(&w, &[1, 2, 3]);
        assert_eq!(greedy_next_token(l1.row(2)), greedy_next_token(l2.row(2)));
    }

    #[test]
    fn different_prompts_give_different_logits() {
        let w = tiny();
        let a = reference_forward_full(&w, &[1, 2, 3]);
        let b = reference_forward_full(&w, &[4, 5, 6]);
        assert!(a.max_abs_diff(&b) > 1e-3);
    }

    #[test]
    fn pre_attention_applies_rope_positions() {
        // Same token at different start positions must produce different keys.
        let w = tiny();
        let cfg = &w.config;
        let rope = RopeTable::new(cfg.head_dim, cfg.rope_base);
        let x = w.embed_tokens(&[7]);
        let a = pre_attention(cfg, &w.layers[0], &x, 0, &rope);
        let b = pre_attention(cfg, &w.layers[0], &x, 5, &rope);
        assert!(a.k.max_abs_diff(&b.k) > 1e-5);
        assert!(
            a.v.max_abs_diff(&b.v) < 1e-9,
            "values are position-independent"
        );
    }
}
