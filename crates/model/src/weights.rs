//! Seeded random model weights.

use lserve_tensor::{Matrix, SeededGaussian};

use crate::ModelConfig;

/// One transformer layer's parameters (pre-norm Llama block).
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection, `hidden x (H·D)`.
    pub wq: Matrix,
    /// Key projection, `hidden x (Ĥ·D)`.
    pub wk: Matrix,
    /// Value projection, `hidden x (Ĥ·D)`.
    pub wv: Matrix,
    /// Output projection, `(H·D) x hidden`.
    pub wo: Matrix,
    /// SwiGLU gate projection, `hidden x ffn`.
    pub w_gate: Matrix,
    /// SwiGLU up projection, `hidden x ffn`.
    pub w_up: Matrix,
    /// SwiGLU down projection, `ffn x hidden`.
    pub w_down: Matrix,
    /// RMSNorm weight before attention.
    pub attn_norm: Vec<f32>,
    /// RMSNorm weight before the FFN.
    pub ffn_norm: Vec<f32>,
}

/// Full model parameters, deterministically generated from a seed.
///
/// Initialization uses `N(0, (1/sqrt(hidden))^2)` for projections, which keeps
/// activations O(1) through dozens of layers — important because engine tests compare
/// 100+-step decodes bit-for-bit against reference forwards.
///
/// # Example
///
/// ```
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let w = ModelWeights::random(&ModelConfig::tiny(), 42);
/// assert_eq!(w.layers.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// The architecture these weights instantiate.
    pub config: ModelConfig,
    /// Token embedding table, `vocab x hidden`.
    pub embed: Matrix,
    /// Per-layer parameters.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm weight.
    pub final_norm: Vec<f32>,
    /// LM head, `hidden x vocab`.
    pub lm_head: Matrix,
}

impl ModelWeights {
    /// Generates random weights for `config` from `seed`.
    ///
    /// Intended for the scaled-down configs; the full 7B/8B presets would allocate
    /// tens of gigabytes. (The cost model never instantiates weights.)
    pub fn random(config: &ModelConfig, seed: u64) -> Self {
        let mut g = SeededGaussian::new(seed);
        let h = config.hidden;
        let std = 1.0 / (h as f32).sqrt();
        let layers = (0..config.num_layers)
            .map(|_| LayerWeights {
                wq: g.matrix(h, config.q_width(), std),
                wk: g.matrix(h, config.kv_width(), std),
                wv: g.matrix(h, config.kv_width(), std),
                wo: g.matrix(config.q_width(), h, std),
                w_gate: g.matrix(h, config.ffn_hidden, std),
                w_up: g.matrix(h, config.ffn_hidden, std),
                w_down: g.matrix(
                    config.ffn_hidden,
                    h,
                    1.0 / (config.ffn_hidden as f32).sqrt(),
                ),
                attn_norm: vec![1.0; h],
                ffn_norm: vec![1.0; h],
            })
            .collect();
        Self {
            config: config.clone(),
            embed: g.matrix(config.vocab, h, 1.0),
            layers,
            final_norm: vec![1.0; h],
            lm_head: g.matrix(h, config.vocab, std),
        }
    }

    /// Embeds a token sequence into a `(len x hidden)` activation matrix.
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of vocabulary.
    pub fn embed_tokens(&self, tokens: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(tokens.len(), self.config.hidden);
        for (r, &t) in tokens.iter().enumerate() {
            assert!(
                (t as usize) < self.config.vocab,
                "token {t} out of vocabulary ({})",
                self.config.vocab
            );
            out.row_mut(r).copy_from_slice(self.embed.row(t as usize));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = ModelConfig::tiny();
        let a = ModelWeights::random(&cfg, 7);
        let b = ModelWeights::random(&cfg, 7);
        assert_eq!(a.layers[0].wq.as_slice(), b.layers[0].wq.as_slice());
        let c = ModelWeights::random(&cfg, 8);
        assert_ne!(a.layers[0].wq.as_slice(), c.layers[0].wq.as_slice());
    }

    #[test]
    fn shapes_match_config() {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::random(&cfg, 1);
        assert_eq!(w.layers[0].wq.shape(), (cfg.hidden, cfg.q_width()));
        assert_eq!(w.layers[0].wk.shape(), (cfg.hidden, cfg.kv_width()));
        assert_eq!(w.layers[0].wo.shape(), (cfg.q_width(), cfg.hidden));
        assert_eq!(w.lm_head.shape(), (cfg.hidden, cfg.vocab));
    }

    #[test]
    fn embed_looks_up_rows() {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::random(&cfg, 1);
        let x = w.embed_tokens(&[3, 3, 5]);
        assert_eq!(x.row(0), x.row(1));
        assert_ne!(x.row(0), x.row(2));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn embed_rejects_oov() {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::random(&cfg, 1);
        let _ = w.embed_tokens(&[9999]);
    }
}
