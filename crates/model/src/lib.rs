//! Toy transformer models with the paper's evaluation architectures.
//!
//! The paper benchmarks Llama-3-8B (GQA), Llama-2-7B (MHA) and Minitron-4B. Efficiency
//! results depend only on the architectural *shapes* (layer count, head counts, head
//! dimension, FFN width), not the trained weights, so this crate provides:
//!
//! * [`ModelConfig`] — exact shape presets for the three evaluation models plus
//!   scaled-down variants that keep the head geometry (the quantity that drives
//!   attention cost) while shrinking layer count and FFN so CPU runs finish;
//! * [`ModelWeights`] — seeded random weights (deterministic per seed);
//! * [`forward`] — the layer building blocks (QKV projection with RoPE, output
//!   projection, SwiGLU FFN, RMSNorm, logits) that serving engines compose with their
//!   own attention kernels and KV caches, plus a cache-free reference forward pass
//!   used as ground truth in engine tests.

pub mod config;
pub mod forward;
pub mod weights;

pub use config::ModelConfig;
pub use forward::{greedy_next_token, reference_forward_full, LayerActivations};
pub use weights::{LayerWeights, ModelWeights};
