//! Streaming request lifecycles and SLO-class scheduling: the handle-based
//! serving API end to end.
//!
//! Three scenes:
//!
//! 1. **Streaming lifecycle** — submit requests as [`RequestSpec`]s, drive the
//!    scheduler step by step, and drain each handle's event queue as tokens
//!    arrive (`Admitted → FirstToken → Token… → Finished`), including a stop
//!    sequence ending one request early.
//! 2. **Cancellation** — cancel a long request mid-flight; its pages are
//!    released at the next step boundary, its completed prefix is donated to
//!    the prefix cache, and the survivor's output is untouched.
//! 3. **SLO mix** — the `slo_mix` workload (long batch prompts with short
//!    interactive requests arriving behind them) under class-aware scheduling
//!    vs class-blind FCFS: per-class p50/p95 TTFT in work tokens, asserting
//!    the interactive-class p95 improves at least 2x at equal total
//!    throughput.
//!
//! ```text
//! cargo run --release --example streaming_serving
//! ```

use std::sync::Arc;

use lserve::core::{
    sequence_pages_estimate, EngineConfig, MigrationMode, ModelExecutor, PreemptionPolicy,
    RequestSpec, Scheduler, SchedulerConfig, ServingEvent, ServingReport, SloClass,
};
use lserve::model::{ModelConfig, ModelWeights};
use lserve::trace::write_chrome_trace;
use lserve::workloads::{slo_mix_workload, SloMixConfig};

fn engine_cfg() -> EngineConfig {
    // Small pages so page accounting is visible at toy scale.
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = lserve::kvcache::PagingConfig::new(8, 4, lserve::quant::KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

fn executor(seed: u64) -> Arc<ModelExecutor> {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), seed));
    Arc::new(ModelExecutor::new(weights, engine_cfg()))
}

fn event_line(id: u64, event: &ServingEvent) -> String {
    match event {
        ServingEvent::Admitted => format!("req {id}: admitted"),
        ServingEvent::FirstToken { token } => format!("req {id}: first token {token}"),
        ServingEvent::Token { token } => format!("req {id}: token {token}"),
        ServingEvent::Preempted { policy } => format!("req {id}: preempted ({policy:?})"),
        ServingEvent::Resumed => format!("req {id}: resumed"),
        ServingEvent::Finished { reason, tokens } => {
            format!("req {id}: finished ({reason:?}), {} tokens", tokens.len())
        }
        ServingEvent::Cancelled { tokens } => {
            format!("req {id}: cancelled after {} tokens", tokens.len())
        }
        ServingEvent::Rejected { reason } => format!("req {id}: rejected ({reason:?})"),
    }
}

/// Scene 1: drive the scheduler manually and narrate both event streams.
fn streaming_lifecycle_demo() {
    println!("streaming lifecycle (two requests, one ended by a stop sequence):\n");
    let mut scfg = SchedulerConfig::new(4096);
    scfg.chunk_tokens = 16;
    let mut sched = Scheduler::new(executor(11), scfg.clone());
    // Learn a stop sequence from a dry run so the demo visibly stops early.
    sched.submit(
        RequestSpec::new(99, (0..24).map(|i| (i % 90) as u32).collect()).max_new_tokens(12),
    );
    let dry = sched.run_to_completion(10_000).completed[0].1.clone();
    let stop_seq = dry[5..7].to_vec();

    let mut sched = Scheduler::new(executor(11), scfg);
    let interactive = sched.submit(
        RequestSpec::new(1, (0..24).map(|i| (i % 90) as u32).collect())
            .max_new_tokens(12)
            .class(SloClass::Interactive)
            .deadline_work_tokens(200)
            .stop_sequence(stop_seq.clone()),
    );
    let batch = sched.submit(
        RequestSpec::new(2, (0..40).map(|i| ((i * 3) % 90) as u32).collect()).max_new_tokens(6),
    );
    while !(interactive.is_terminal() && batch.is_terminal()) {
        sched.step();
        for (handle, id) in [(&interactive, 1u64), (&batch, 2u64)] {
            for ev in handle.drain_events() {
                println!("  {}", event_line(id, &ev));
            }
        }
    }
    let report = sched.report_snapshot();
    let m1 = report.request_metrics.iter().find(|m| m.id == 1).unwrap();
    assert!(m1.tokens < 12, "stop sequence must end generation early");
    println!(
        "\n  stop sequence {stop_seq:?} ended req 1 after {} of 12 tokens\n",
        m1.tokens
    );
    println!("{}\n", indent(&report.summary()));
}

/// Indents a multi-line block for nesting under a scene header.
fn indent(block: &str) -> String {
    block
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Scene 2: cancel a long request mid-flight; the survivor is untouched and
/// the cancelled prefix warms the cache for a follow-up.
fn cancellation_demo() {
    println!("cancellation (mid-flight, prefix donated to the cache):\n");
    let mut scfg = SchedulerConfig::new(4096);
    scfg.chunk_tokens = 16;
    scfg.prefix_cache = true;
    let exec = executor(11);
    let mut sched = Scheduler::new(Arc::clone(&exec), scfg.clone());
    let doomed = sched.submit(
        RequestSpec::new(1, (0..96).map(|i| ((i * 5) % 90) as u32).collect()).max_new_tokens(24),
    );
    let survivor = sched.submit(
        RequestSpec::new(2, (0..24).map(|i| ((i * 7) % 90) as u32).collect()).max_new_tokens(8),
    );
    for _ in 0..3 {
        sched.step();
    }
    doomed.cancel();
    while !survivor.is_terminal() || !doomed.is_terminal() {
        sched.step();
    }
    // Solo reference for the survivor: same policy, fresh scheduler, no
    // neighbour and no cancellation — outputs must be bit-identical.
    let mut solo = Scheduler::new(exec, scfg);
    solo.submit(
        RequestSpec::new(2, (0..24).map(|i| ((i * 7) % 90) as u32).collect()).max_new_tokens(8),
    );
    let want = solo.run_to_completion(10_000).completed[0].1.clone();
    let report = sched.report_snapshot().clone();
    let got = &report.completed.iter().find(|(id, _)| *id == 2).unwrap().1;
    assert_eq!(got, &want, "survivor diverged from its solo run");
    // The cancelled request's fed prefix is warm: re-submitting its prompt hits.
    let follow = sched.submit(
        RequestSpec::new(3, (0..96).map(|i| ((i * 5) % 90) as u32).collect()).max_new_tokens(4),
    );
    let _ = follow;
    let report = sched.run_to_completion(10_000);
    let m3 = report.request_metrics.iter().find(|m| m.id == 3).unwrap();
    println!(
        "  cancelled req 1 mid-flight ({} cancelled, survivor bit-identical to solo);\n  \
         follow-up over the same prompt started with {} cached tokens\n",
        report.cancelled.len(),
        m3.cached_prompt_tokens
    );
    assert!(
        m3.cached_prompt_tokens > 0,
        "cancelled prefix must warm the cache"
    );
}

fn per_class_line(name: &str, report: &ServingReport, class: SloClass) -> String {
    let count = report
        .request_metrics
        .iter()
        .filter(|m| m.class == class)
        .count();
    format!(
        "{name:>24} {class:?}: n={count}, TTFT p50 {} / p95 {} work tokens",
        report.ttft_work_percentile_class(class, 0.5),
        report.ttft_work_percentile_class(class, 0.95),
    )
}

/// Scene 3: the SLO-mix workload under class-aware vs class-blind scheduling.
fn slo_mix_demo() {
    let wl = SloMixConfig::small();
    println!(
        "SLO mix: {} waves of {} batch ({} tokens) + {} interactive ({} tokens) requests,\n\
         pool sized for ~1.5 batch sequences — scheduling policy is the only difference:\n",
        wl.waves,
        wl.batch_per_wave,
        wl.batch_prompt_tokens,
        wl.interactive_per_wave,
        wl.interactive_prompt_tokens,
    );
    let exec = executor(11);
    let cfg = engine_cfg();
    let per_batch = sequence_pages_estimate(
        &cfg,
        &exec.weights().config,
        wl.batch_prompt_tokens + wl.batch_new_tokens,
    );
    let pool_pages = per_batch + per_batch / 2;
    let requests = slo_mix_workload(&wl);
    let mut reports = Vec::new();
    for class_aware in [false, true] {
        let mut scfg = SchedulerConfig::new(pool_pages);
        scfg.chunk_tokens = 16;
        scfg.class_aware = class_aware;
        let mut sched = Scheduler::new(Arc::clone(&exec), scfg.clone());
        for (i, r) in requests.iter().enumerate() {
            let mut spec = RequestSpec::new(i as u64, r.spec.prompt.clone())
                .max_new_tokens(r.spec.max_new_tokens);
            if r.interactive {
                spec = spec
                    .class(SloClass::Interactive)
                    .deadline_work_tokens(4 * wl.batch_prompt_tokens as u64);
            }
            sched.submit(spec);
        }
        let report = sched.run_to_completion(1_000_000);
        let name = if class_aware {
            "class-aware"
        } else {
            "class-blind FCFS"
        };
        println!("  {}", per_class_line(name, &report, SloClass::Interactive));
        println!("  {}", per_class_line(name, &report, SloClass::Batch));
        println!("{}\n", indent(&report.summary()));
        reports.push(report);
    }
    let (blind, aware) = (&reports[0], &reports[1]);
    // Equal total throughput: both runs complete every request with the same
    // outputs (determinism: scheduling order never changes tokens).
    assert_eq!(aware.completed.len(), requests.len());
    assert_eq!(aware.completed, blind.completed, "outputs must not change");
    let blind_p95 = blind.ttft_work_percentile_class(SloClass::Interactive, 0.95);
    let aware_p95 = aware.ttft_work_percentile_class(SloClass::Interactive, 0.95);
    println!(
        "  interactive p95 TTFT: {blind_p95} -> {aware_p95} work tokens \
         ({:.1}x better)\n",
        blind_p95 as f64 / aware_p95.max(1) as f64
    );
    assert!(
        aware_p95 * 2 <= blind_p95,
        "class-aware scheduling must improve interactive p95 TTFT >= 2x \
         (aware {aware_p95}, blind {blind_p95})"
    );
}

/// Scene 4: an oversubscribed tiered-memory scene (swap preemption, async
/// migration, selection-driven demotion) with the unified tracing layer on.
/// With `LSERVE_TRACE=1` this exports `streaming_serving.trace.json`, a
/// Chrome-trace-format file loadable in <https://ui.perfetto.dev>: lanes for
/// the scheduler (one track per request), the executor's per-layer phases,
/// the LPT-balanced attention shard workers, the copy engine, and the page
/// selector, plus counter tracks for hot/cold pages and running sequences —
/// all on the deterministic work-token clock, so two runs of the same
/// workload produce byte-identical traces.
fn traced_overcommit_demo() {
    println!("work-token trace (oversubscribed pool, swap preemption, async migration):\n");
    let mut cfg = engine_cfg();
    // Tight selection budget with fast chunk turnover: rescoring, demotion,
    // promotion, and prefetch all fire at toy scale (the proptest scene).
    cfg.dynamic_budget = Some(24);
    cfg.demote_after_chunks = Some(1);
    cfg.reuse_interval = 2;
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 11));
    let exec = Arc::new(ModelExecutor::new(weights, cfg.clone()));
    let requests: Vec<RequestSpec> = (0..3u64)
        .map(|i| {
            RequestSpec::new(
                i,
                (0..40 + 9 * i as usize)
                    .map(|t| ((t * 3 + i as usize * 7) % 90) as u32)
                    .collect(),
            )
            .max_new_tokens(16)
        })
        .collect();
    let single_max = requests
        .iter()
        .map(|r| {
            sequence_pages_estimate(
                &cfg,
                &exec.weights().config,
                r.prompt.len() + r.max_new_tokens,
            )
        })
        .max()
        .unwrap();
    // ~1.5 sequences of pool: admission overcommits, preemption resolves.
    let mut scfg = SchedulerConfig::new(single_max + single_max / 2);
    scfg.chunk_tokens = 8;
    scfg.preemption = PreemptionPolicy::Swap;
    scfg.migration = MigrationMode::Async;
    let tracer = scfg.tracer.clone();
    let mut sched = Scheduler::new(exec, scfg);
    for r in &requests {
        sched.submit(r.clone());
    }
    let report = sched.run_to_completion(200_000);
    assert_eq!(report.completed.len(), requests.len());
    println!("{}\n", indent(&report.summary()));
    if tracer.is_enabled() {
        let (events, dropped) = tracer.drain();
        let path = "streaming_serving.trace.json";
        write_chrome_trace(path, &events, dropped).expect("write trace file");
        println!(
            "  wrote {path} ({} events, {dropped} dropped) — open in https://ui.perfetto.dev\n",
            events.len()
        );
    } else {
        println!(
            "  set LSERVE_TRACE=1 to export streaming_serving.trace.json (Perfetto-loadable)\n"
        );
    }
}

fn main() {
    streaming_lifecycle_demo();
    cancellation_demo();
    slo_mix_demo();
    traced_overcommit_demo();
    println!(
        "Interactive requests jump the admission queue (class-first rank, EDF within a\n\
         class), batch sequences are the preferred preemption victims (cheapest first\n\
         under swap: fewest sole-owned hot pages), and every reordering is latency-only:\n\
         outputs stay bit-identical to class-blind FCFS and to per-request solo runs."
    );
}
