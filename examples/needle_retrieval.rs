//! Needle-in-a-haystack retrieval: plant a needle in a 64K-token KV cache and watch
//! each page-selection policy try to find it under a 4096-token budget.
//!
//! This is the paper's central accuracy mechanism (Figures 6, 9, 13) in ~60 lines:
//! flat Quest-style statistics work at page size 16, collapse at page size 64, and
//! hierarchical paging restores accuracy at 64 without raising the budget.
//!
//! ```text
//! cargo run --release --example needle_retrieval
//! ```

use lserve::kvcache::PagingConfig;
use lserve::quant::KvPrecision;
use lserve::selector::{FlatSelector, HierarchicalSelector, PageSelector};
use lserve::workloads::{NiahCase, NiahConfig};

fn main() {
    let seq = 65_536;
    let budget = 4096;
    println!("haystack: {seq} tokens, budget: {budget} tokens, needle: 8 tokens\n");

    for depth in [0.2f64, 0.5, 0.8] {
        let case = NiahCase::generate(NiahConfig::standard(seq), depth, 7 + (depth * 10.0) as u64);
        let (ns, ne) = case.needle_range();
        println!("needle at depth {:.0}% (tokens {ns}..{ne}):", depth * 100.0);

        // Quest-style flat selection, fine pages: works.
        let (pool, cache) = case.build_cache(PagingConfig::flat(16, KvPrecision::Fp16));
        let mut flat16 = FlatSelector::new(true);
        let s = flat16.select(&pool, &cache, &[case.query()], budget, 0);
        println!(
            "  flat @ page 16          -> recall {:.2} ({} pages scored)",
            case.recall(&s.pages, 16),
            s.logical_pages_scored
        );

        // Quest-style flat selection, coarse pages: the page-size dilemma.
        let (pool, cache) = case.build_cache(PagingConfig::flat(64, KvPrecision::Fp16));
        let mut flat64 = FlatSelector::new(true);
        let s = flat64.select(&pool, &cache, &[case.query()], budget, 0);
        println!(
            "  flat @ page 64          -> recall {:.2} (statistics homogenized)",
            case.recall(&s.pages, 64)
        );

        // LServe's hierarchical paging: coarse physical pages, fine logical stats.
        let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Int4));
        let mut hier = HierarchicalSelector::new(true);
        let s = hier.select(&pool, &cache, &[case.query()], budget, 0);
        println!(
            "  hierarchical @ 64/16    -> recall {:.2} (INT4 pages, same budget)\n",
            case.recall(&s.pages, 64)
        );
    }
    println!("The selected pages feed lserve::attention::decode_dense_head as a");
    println!("shorter page table — the kernel never touches the skipped pages.");
}
