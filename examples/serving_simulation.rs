//! Multi-request serving: a shared page pool under memory pressure, chunked
//! prefill, continuous batching, preemption/resume, and the memory asymmetry
//! between dense and streaming heads.
//!
//! ```text
//! cargo run --release --example serving_simulation
//! ```

use std::sync::Arc;

use lserve::core::{
    AdmissionPolicy, EngineConfig, ModelExecutor, Request, Scheduler, SchedulerConfig,
};
use lserve::model::{ModelConfig, ModelWeights};

fn engine_cfg(mut cfg: EngineConfig) -> EngineConfig {
    // Small pages so page accounting is visible at toy scale.
    cfg.paging = lserve::kvcache::PagingConfig::new(8, 4, lserve::quant::KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

fn submit_all(sched: &mut Scheduler) {
    // One long prompt up front (the head-of-line risk), then short interactive
    // requests behind it.
    sched.submit(Request {
        id: 0,
        prompt: (0..400).map(|i| (i % 90) as u32).collect(),
        max_new_tokens: 24,
    });
    for id in 1..8 {
        sched.submit(Request {
            id,
            prompt: (0..8 + 2 * id as usize).map(|i| (i % 90) as u32).collect(),
            max_new_tokens: 24,
        });
    }
}

fn run(name: &str, cfg: EngineConfig, pool_pages: usize, chunk_tokens: usize) {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 11));
    let exec = Arc::new(ModelExecutor::new(weights, engine_cfg(cfg)));
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = chunk_tokens;
    scfg.admission = AdmissionPolicy::FirstChunk;
    let mut sched = Scheduler::new(exec, scfg);
    submit_all(&mut sched);
    let report = sched.run_to_completion(1_000_000);
    // TTFT in *work tokens* (forward-pass tokens across all sequences): the
    // honest time proxy, since one iteration can hide unbounded prefill work.
    let short_ttft: Vec<u64> = report
        .request_metrics
        .iter()
        .filter(|m| m.id != 0)
        .map(|m| m.ttft_work_tokens)
        .collect();
    let mean_short_ttft = short_ttft.iter().sum::<u64>() as f64 / short_ttft.len().max(1) as f64;
    println!(
        "{name:>26}: completed {}, rejected {}, iterations {}, peak pages {}, \
         preemptions {}, mean short-request TTFT {:.0} work tokens",
        report.completed.len(),
        report.rejected.len(),
        report.scheduler_steps,
        report.peak_pages,
        report.preemptions,
        mean_short_ttft,
    );
}

fn main() {
    println!("1 long prompt (400 tokens) + 7 short prompts, 24 generated tokens each\n");
    // Monolithic prefill: the long prompt's admission stalls everyone behind it.
    run(
        "monolithic prefill",
        EngineConfig::lserve_fp16(),
        4096,
        usize::MAX,
    );
    // Chunked prefill: the long prompt feeds 16 tokens per iteration while the
    // short requests decode in between — watch short-request TTFT drop.
    run(
        "chunked prefill (16)",
        EngineConfig::lserve_fp16(),
        4096,
        16,
    );
    // Tight pool: aggressive first-chunk admission over ~2 sequences of memory.
    // Preemption evicts the lowest-priority sequence when decode demand exceeds
    // free pages; it re-prefills later and every request still completes with the
    // exact tokens of an unconstrained run.
    run(
        "tight pool, preempting",
        EngineConfig::lserve_fp16(),
        170,
        16,
    );
    println!(
        "\nChunked prefill bounds per-iteration prefill work, so short requests keep\n\
         decoding while a long prompt streams in (no head-of-line blocking); under\n\
         memory pressure the scheduler preempts the newest sequence — its pages are\n\
         released, and on resume the prompt *and* already-generated tokens are re-fed\n\
         through the identical pipeline, so outputs never change (determinism is\n\
         tested in tests/proptest_scheduler.rs). Streaming heads retain only\n\
         sink+local pages (Figure 5), so the same device memory admits more\n\
         concurrent sequences — the paper's memory-saving axis in Figure 1."
    );
}
