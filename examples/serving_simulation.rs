//! Multi-request serving: a shared page pool under memory pressure, FCFS admission,
//! continuous batching, and the memory asymmetry between dense and streaming heads.
//!
//! ```text
//! cargo run --release --example serving_simulation
//! ```

use std::sync::Arc;

use lserve::core::{EngineConfig, Request, ServingEngine};
use lserve::model::{ModelConfig, ModelWeights};

fn run(name: &str, mut cfg: EngineConfig, pool_pages: usize) {
    // Small pages so page accounting is visible at toy scale.
    cfg.paging = lserve::kvcache::PagingConfig::new(8, 4, lserve::quant::KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 11));
    let mut srv = ServingEngine::new(weights, cfg, pool_pages);
    for id in 0..8 {
        srv.submit(Request {
            id,
            prompt: (0..48 + 4 * id as usize).map(|i| (i % 90) as u32).collect(),
            max_new_tokens: 48,
        });
    }
    let report = srv.run_to_completion(100_000);
    println!(
        "{name:>22}: completed {}, rejected {}, scheduler iterations {}, peak pages {}",
        report.completed.len(),
        report.rejected.len(),
        report.scheduler_steps,
        report.peak_pages,
    );
}

fn main() {
    println!("8 requests, 48-76 token prompts, 48 generated tokens each\n");
    // Generous memory: everything runs concurrently.
    run("dense, large pool", EngineConfig::dense(), 4096);
    // Tight memory: dense KV forces serialized admission (more scheduler steps).
    run("dense, tight pool", EngineConfig::dense(), 132);
    // Same tight pool with LServe: streaming heads free half the KV growth and more
    // requests fit together.
    run("lserve, tight pool", EngineConfig::lserve_fp16(), 132);
    println!("\nStreaming heads retain only sink+local pages (Figure 5's two-way cache),");
    println!("so the same device memory admits more concurrent sequences — the paper's");
    println!("memory-saving axis in Figure 1.");
}
