//! Multi-request serving: a shared page pool under memory pressure, chunked
//! prefill, continuous batching, preemption/resume, the memory asymmetry
//! between dense and streaming heads — and cross-request prefix caching over a
//! shared-prefix (persona) workload.
//!
//! ```text
//! cargo run --release --example serving_simulation
//! ```

use std::sync::Arc;

use lserve::core::{
    sequence_pages_estimate, AdmissionPolicy, EngineConfig, ModelExecutor, PreemptionPolicy,
    RequestSpec, Scheduler, SchedulerConfig, ServingReport, SloClass,
};
use lserve::model::{ModelConfig, ModelWeights};
use lserve::workloads::{
    overcommit_workload, shared_prefix_workload, slo_mix_workload, OvercommitConfig,
    SharedPrefixConfig, SloMixConfig,
};

fn engine_cfg(mut cfg: EngineConfig) -> EngineConfig {
    // Small pages so page accounting is visible at toy scale.
    cfg.paging = lserve::kvcache::PagingConfig::new(8, 4, lserve::quant::KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

fn indent(block: &str) -> String {
    block
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn submit_all(sched: &mut Scheduler) {
    // One long prompt up front (the head-of-line risk), then short interactive
    // requests behind it.
    sched.submit(
        RequestSpec::new(0, (0..400).map(|i| (i % 90) as u32).collect()).max_new_tokens(24),
    );
    for id in 1..8 {
        sched.submit(
            RequestSpec::new(
                id,
                (0..8 + 2 * id as usize).map(|i| (i % 90) as u32).collect(),
            )
            .max_new_tokens(24),
        );
    }
}

fn run(name: &str, cfg: EngineConfig, pool_pages: usize, chunk_tokens: usize) {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 11));
    let exec = Arc::new(ModelExecutor::new(weights, engine_cfg(cfg)));
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = chunk_tokens;
    scfg.admission = AdmissionPolicy::FirstChunk;
    let mut sched = Scheduler::new(exec, scfg);
    submit_all(&mut sched);
    let report = sched.run_to_completion(1_000_000);
    // TTFT in *work tokens* (forward-pass tokens across all sequences): the
    // honest time proxy, since one iteration can hide unbounded prefill work.
    let short_ttft: Vec<u64> = report
        .request_metrics
        .iter()
        .filter(|m| m.id != 0)
        .map(|m| m.ttft_work_tokens)
        .collect();
    let mean_short_ttft = short_ttft.iter().sum::<u64>() as f64 / short_ttft.len().max(1) as f64;
    println!(
        "{name:>26}: completed {}, rejected {}, iterations {}, peak pages {}, \
         preemptions {}, mean short-request TTFT {:.0} work tokens",
        report.completed.len(),
        report.rejected.len(),
        report.scheduler_steps,
        report.peak_pages,
        report.preemptions,
        mean_short_ttft,
    );
}

/// Sparsity-aware parallel decode: the same workload on the sharded executor
/// at several worker counts. Outputs are bit-identical across thread counts
/// (the determinism suite pins this); what changes is the schedule — reported
/// as per-step worker utilization/imbalance and the deterministic cost-model
/// speedup of the LPT shard assignment.
fn run_parallel_decode_demo() {
    println!("\nparallel decode over (sequence x KV-head) shards:\n");
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 11));
    let exec = Arc::new(ModelExecutor::new(
        weights,
        engine_cfg(EngineConfig::lserve_fp16()),
    ));
    for threads in [1usize, 4] {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 16;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.decode_threads = threads;
        let mut sched = Scheduler::new(Arc::clone(&exec), scfg);
        submit_all(&mut sched);
        let report = sched.run_to_completion(1_000_000);
        println!(
            "{:>26}: completed {}, {} shards over {} phases, modeled speedup {:.2}x, \
             worker utilization {:.1}% (imbalance {:.2}x), {} stolen",
            format!("{threads} decode thread(s)"),
            report.completed.len(),
            report.parallel.shards,
            report.parallel.phases,
            report.parallel.modeled_speedup(),
            100.0 * report.worker_utilization(),
            report.worker_imbalance(),
            report.parallel.stolen,
        );
    }
    println!(
        "\nStreaming-head shards cost a constant window while dense-head shards grow\n\
         with context (or shrink to the selector's page set), so the executor\n\
         LPT-balances shards by that cost and lets idle workers steal stragglers;\n\
         the modeled speedup is the schedule's critical-path win, independent of\n\
         how many physical cores this host happens to have."
    );
}

/// The persona workload as serving requests.
fn persona_wave(cfg: &SharedPrefixConfig) -> Vec<RequestSpec> {
    shared_prefix_workload(cfg)
        .into_iter()
        .enumerate()
        .map(|(i, s)| RequestSpec::new(i as u64, s.prompt).max_new_tokens(s.max_new_tokens))
        .collect()
}

/// A follow-up wave: same system + persona blocks, fresh query suffixes.
fn follow_up_wave(cfg: &SharedPrefixConfig, first: &[RequestSpec]) -> Vec<RequestSpec> {
    let shared = cfg.system_tokens + cfg.persona_tokens;
    first
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut prompt = r.prompt[..shared].to_vec();
            prompt.extend((0..cfg.query_tokens).map(|t| ((t * 13 + i * 7 + 5) % 90) as u32));
            RequestSpec::new(100 + i as u64, prompt).max_new_tokens(cfg.max_new_tokens)
        })
        .collect()
}

fn mean_ttft_work(report: &ServingReport, ids: impl Fn(u64) -> bool) -> f64 {
    let v: Vec<u64> = report
        .request_metrics
        .iter()
        .filter(|m| ids(m.id))
        .map(|m| m.ttft_work_tokens)
        .collect();
    v.iter().sum::<u64>() as f64 / v.len().max(1) as f64
}

/// Cold vs warm serving of the shared-prefix persona workload.
fn run_prefix_cache_demo() {
    let wl = SharedPrefixConfig::small();
    println!(
        "\nshared-prefix workload: {} personas x {} queries, {}-token prompts \
         ({} shared system + {} persona + {} query), {} generated tokens each\n",
        wl.personas,
        wl.queries_per_persona,
        wl.prompt_len(),
        wl.system_tokens,
        wl.persona_tokens,
        wl.query_tokens,
        wl.max_new_tokens,
    );
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 11));
    let exec = Arc::new(ModelExecutor::new(
        weights,
        engine_cfg(EngineConfig::lserve_fp16()),
    ));
    let requests = persona_wave(&wl);

    for (name, prefix_cache) in [("prefix cache off", false), ("prefix cache on", true)] {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 16;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.prefix_cache = prefix_cache;
        let mut sched = Scheduler::new(Arc::clone(&exec), scfg);
        for r in &requests {
            sched.submit(r.clone());
        }
        let report = sched.run_to_completion(1_000_000);
        println!(
            "{name:>26}: completed {}, hit rate {:>5.1}%, hit/recomputed prompt tokens {}/{}, \
             evictions {}, mean TTFT {:.0} work tokens (p50 {}, p95 {})",
            report.completed.len(),
            100.0 * report.prefix_hit_rate(),
            report.prefix_hit_tokens,
            report.prefix_recomputed_tokens,
            report.prefix_evictions,
            mean_ttft_work(&report, |_| true),
            report.ttft_work_percentile(0.5),
            report.ttft_work_percentile(0.95),
        );
        if prefix_cache {
            // Second wave: same personas, fresh queries — the steady-state hit path.
            let warm = follow_up_wave(&wl, &requests);
            let cold_mean = {
                let mut cold_scfg = SchedulerConfig::new(4096);
                cold_scfg.chunk_tokens = 16;
                cold_scfg.admission = AdmissionPolicy::FirstChunk;
                let mut cold = Scheduler::new(Arc::clone(&exec), cold_scfg);
                for r in &warm {
                    cold.submit(r.clone());
                }
                mean_ttft_work(&cold.run_to_completion(1_000_000), |_| true)
            };
            // The scheduler's report accumulates across waves; take this wave's
            // counters as deltas against the first wave so the printed numbers
            // describe only the warm traffic.
            let wave1_hit = report.prefix_hit_tokens;
            let wave1_recomputed = report.prefix_recomputed_tokens;
            for r in &warm {
                sched.submit(r.clone());
            }
            let report = sched.run_to_completion(1_000_000);
            let warm_mean = mean_ttft_work(&report, |id| id >= 100);
            let warm_only = ServingReport {
                request_metrics: report
                    .request_metrics
                    .iter()
                    .filter(|m| m.id >= 100)
                    .copied()
                    .collect(),
                prefix_hit_tokens: report.prefix_hit_tokens - wave1_hit,
                prefix_recomputed_tokens: report.prefix_recomputed_tokens - wave1_recomputed,
                ..ServingReport::default()
            };
            println!(
                "{:>26}: hit rate {:>5.1}%, mean TTFT {:.0} work tokens (p50 {}, p95 {}) — {:.1}x \
                 better than cold",
                "warm second wave",
                100.0 * warm_only.prefix_hit_rate(),
                warm_mean,
                warm_only.ttft_work_percentile(0.5),
                warm_only.ttft_work_percentile(0.95),
                cold_mean / warm_mean.max(1.0),
            );
            assert!(
                warm_mean * 3.0 <= cold_mean,
                "prefix cache must cut warm TTFT at least 3x (warm {warm_mean}, cold {cold_mean})"
            );
        }
    }
    println!(
        "\nEvery prompt shares the system block (and, per persona, the persona block)\n\
         with its peers, so with the prefix cache on only the query suffix is ever\n\
         prefilled after the first occurrence: the radix tree matches the deepest\n\
         donated anchor, the new sequence starts from the shared refcounted pages\n\
         (copy-on-write protects them), and outputs stay bit-identical to cold runs\n\
         (tests/proptest_scheduler.rs)."
    );
}

/// Tiered KV memory under oversubscription: the same bursty long-context
/// workload on the same (small) hot tier, served by the resident baseline
/// (replay preemption, everything device-resident) vs the tiered memory
/// manager (swap-based preemption + selection-driven demotion). The tiered run
/// must sustain strictly more concurrently running sequences — cold context
/// moves to host memory instead of occupying the device.
fn run_oversubscription_demo() {
    let wl = OvercommitConfig::small();
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 11));
    let mut base = engine_cfg(EngineConfig::lserve_fp16());
    base.dynamic_budget = Some(32); // selection active at toy context lengths
    let per_seq = sequence_pages_estimate(
        &base,
        &weights.config,
        wl.max_prompt_len() + wl.max_new_tokens,
    );
    // Hot tier: roughly a third of one burst's aggregate footprint.
    let hot_pages = (per_seq * wl.requests_per_burst) / 3 + 16;
    println!(
        "\novercommit workload: {} bursts x {} long-context requests \
         ({}..{} prompt tokens, {} generated), hot tier {} pages \
         (~{:.1} sequences resident)\n",
        wl.bursts,
        wl.requests_per_burst,
        wl.context_tokens,
        wl.max_prompt_len(),
        wl.max_new_tokens,
        hot_pages,
        hot_pages as f64 / per_seq as f64,
    );
    let mut peaks = Vec::new();
    for (name, policy, demote) in [
        ("resident baseline (replay)", PreemptionPolicy::Replay, None),
        ("tiered (swap + demotion)", PreemptionPolicy::Swap, Some(2)),
    ] {
        let mut cfg = base.clone();
        cfg.demote_after_chunks = demote;
        let exec = Arc::new(ModelExecutor::new(Arc::clone(&weights), cfg));
        let mut scfg = SchedulerConfig::new(hot_pages);
        scfg.chunk_tokens = 16;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.preemption = policy;
        let mut sched = Scheduler::new(exec, scfg);
        for (i, s) in overcommit_workload(&wl).into_iter().enumerate() {
            sched.submit(RequestSpec::new(i as u64, s.prompt).max_new_tokens(s.max_new_tokens));
        }
        let report = sched.run_to_completion(1_000_000);
        println!("{name}:");
        println!("{}\n", indent(&report.summary()));
        assert_eq!(
            report.completed.len() + report.rejected.len(),
            wl.total_requests()
        );
        peaks.push(report.mean_running());
    }
    assert!(
        peaks[1] > peaks[0],
        "the tiered memory manager must sustain strictly more concurrently \
         running sequences than the resident baseline at the same hot-tier \
         size (tiered {:.2}, resident {:.2})",
        peaks[1],
        peaks[0]
    );
    println!(
        "\nThe resident baseline can only admit what fits the device, and relieves\n\
         pressure by throwing away a victim's KV and replaying its whole context.\n\
         The tiered manager demotes selector-cold pages to host memory as decode\n\
         proceeds (the selector's importance signal doubles as a temperature\n\
         signal), and preemption swaps a victim's page set out instead of freeing\n\
         it — resume is a {}x-cheaper modeled transfer, not a recompute — so the\n\
         same hot tier sustains strictly more live sequences.",
        lserve::kvcache::HOST_TRANSFER_SPEEDUP,
    );
}

/// SLO-mix scene: the same mixed Interactive+Batch workload under class-blind
/// FCFS and class-aware scheduling. Admission rank and victim selection are
/// the only difference — outputs are bit-identical — yet interactive p95 TTFT
/// collapses while batch throughput is unchanged.
fn run_slo_mix_demo() {
    let wl = SloMixConfig::small();
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 11));
    let cfg = engine_cfg(EngineConfig::lserve_fp16());
    let per_batch = sequence_pages_estimate(
        &cfg,
        &weights.config,
        wl.batch_prompt_tokens + wl.batch_new_tokens,
    );
    let exec = Arc::new(ModelExecutor::new(weights, cfg));
    println!(
        "\nSLO mix: {} waves of {} batch ({}-token) + {} interactive ({}-token) requests\n\
         on a pool sized for ~1.5 batch sequences:\n",
        wl.waves,
        wl.batch_per_wave,
        wl.batch_prompt_tokens,
        wl.interactive_per_wave,
        wl.interactive_prompt_tokens,
    );
    let requests = slo_mix_workload(&wl);
    let mut p95s = Vec::new();
    for class_aware in [false, true] {
        let mut scfg = SchedulerConfig::new(per_batch + per_batch / 2);
        scfg.chunk_tokens = 16;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.class_aware = class_aware;
        let mut sched = Scheduler::new(Arc::clone(&exec), scfg);
        for (i, r) in requests.iter().enumerate() {
            let mut spec = RequestSpec::new(i as u64, r.spec.prompt.clone())
                .max_new_tokens(r.spec.max_new_tokens);
            if r.interactive {
                spec = spec.class(SloClass::Interactive);
            }
            sched.submit(spec);
        }
        let report = sched.run_to_completion(1_000_000);
        let name = if class_aware {
            "class-aware"
        } else {
            "class-blind FCFS"
        };
        println!("{name}:");
        println!("{}", indent(&report.summary()));
        println!(
            "  classes:   interactive ttft p50 {} / p95 {} work-tokens; batch p95 {}\n",
            report.ttft_work_percentile_class(SloClass::Interactive, 0.5),
            report.ttft_work_percentile_class(SloClass::Interactive, 0.95),
            report.ttft_work_percentile_class(SloClass::Batch, 0.95),
        );
        assert_eq!(report.completed.len(), requests.len());
        p95s.push(report.ttft_work_percentile_class(SloClass::Interactive, 0.95));
    }
    println!(
        "\nClass-aware admission lets interactive requests jump queued batch prompts and\n\
         spares them at victim selection; outputs are bit-identical either way, so the\n\
         {:.1}x interactive p95 win is pure scheduling.",
        p95s[0] as f64 / p95s[1].max(1) as f64
    );
    assert!(
        p95s[1] * 2 <= p95s[0],
        "class-aware must improve interactive p95 TTFT >= 2x (got {} -> {})",
        p95s[0],
        p95s[1]
    );
}

fn main() {
    println!("1 long prompt (400 tokens) + 7 short prompts, 24 generated tokens each\n");
    // Monolithic prefill: the long prompt's admission stalls everyone behind it.
    run(
        "monolithic prefill",
        EngineConfig::lserve_fp16(),
        4096,
        usize::MAX,
    );
    // Chunked prefill: the long prompt feeds 16 tokens per iteration while the
    // short requests decode in between — watch short-request TTFT drop.
    run(
        "chunked prefill (16)",
        EngineConfig::lserve_fp16(),
        4096,
        16,
    );
    // Tight pool: aggressive first-chunk admission over ~2 sequences of memory.
    // Preemption evicts the lowest-priority sequence when decode demand exceeds
    // free pages; it re-prefills later and every request still completes with the
    // exact tokens of an unconstrained run.
    run(
        "tight pool, preempting",
        EngineConfig::lserve_fp16(),
        170,
        16,
    );
    run_parallel_decode_demo();
    run_prefix_cache_demo();
    run_oversubscription_demo();
    run_slo_mix_demo();
    println!(
        "\nChunked prefill bounds per-iteration prefill work, so short requests keep\n\
         decoding while a long prompt streams in (no head-of-line blocking); under\n\
         memory pressure the scheduler preempts the newest sequence — its pages are\n\
         released, and on resume the prompt *and* already-generated tokens are re-fed\n\
         through the identical pipeline, so outputs never change (determinism is\n\
         tested in tests/proptest_scheduler.rs). Streaming heads retain only\n\
         sink+local pages (Figure 5), so the same device memory admits more\n\
         concurrent sequences — the paper's memory-saving axis in Figure 1."
    );
}
