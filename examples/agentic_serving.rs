//! Agentic request DAGs end to end: speculative fork/join branching with
//! per-branch programmable sparsity.
//!
//! Three scenes from `lserve::workloads::agentic`, each forked off a live
//! root request with the scheduler's CoW `fork()`:
//!
//! 1. **Map/reduce fan-out** (`All` join) — a planner forks one sub-query
//!    per shard; every branch CoW-shares the root's pages (the example
//!    asserts *zero* new pages at fork time), one shard runs under a tighter
//!    per-branch selection budget, and the branch outputs feed a final
//!    reduce request.
//! 2. **Speculative tool calls** (`FirstFinished` join) — continuations for
//!    several speculated tool results race; the first finisher wins and the
//!    losers are cascade-cancelled, donating their prefix on the way out.
//! 3. **Best-of-N panel** (`BestScore` join) — N candidates with ranker
//!    score biases; the join waits for the whole panel and picks the
//!    highest-scored candidate.
//!
//! ```text
//! cargo run --release --example agentic_serving
//! ```

use std::sync::Arc;

use lserve::core::{
    BranchSpec, EngineConfig, JoinPolicy, ModelExecutor, RequestHandle, RequestSpec, RequestStatus,
    Scheduler, SchedulerConfig, ServingEvent, SparsityOverride,
};
use lserve::model::{ModelConfig, ModelWeights};
use lserve::workloads::{
    best_of_n, map_reduce_fanout, tool_call_branches, AgentScene, AgenticConfig,
};

/// A fresh scheduler with dynamic page selection on (so per-branch budget
/// overrides bite), chunked prefill, and the prefix cache for loser donation.
fn scheduler() -> Scheduler {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 42));
    let exec = Arc::new(ModelExecutor::new(
        weights,
        EngineConfig::lserve_with_budget(64),
    ));
    let mut scfg = SchedulerConfig::new(4096);
    scfg.chunk_tokens = 8;
    scfg.prefix_cache = true;
    Scheduler::new(exec, scfg)
}

/// Steps until the root request has generated at least `want` tokens
/// (so it is mid-decode — a fork-able live sequence), returning them.
fn run_until_generated(sched: &mut Scheduler, h: &RequestHandle, want: usize) -> Vec<u32> {
    let mut got = Vec::new();
    while got.len() < want {
        sched.step();
        for e in h.drain_events() {
            if let ServingEvent::FirstToken { token } | ServingEvent::Token { token } = e {
                got.push(token);
            }
        }
    }
    got
}

/// Maps the workload's plain branch structs onto scheduler branch specs,
/// ids `first_id..`.
fn to_branch_specs(scene: &AgentScene, first_id: u64) -> Vec<BranchSpec> {
    scene
        .branches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut spec = BranchSpec::new(first_id + i as u64, b.suffix.clone())
                .max_new_tokens(b.max_new_tokens)
                .score_bias(b.score_bias);
            for &t in &b.stop_tokens {
                spec = spec.stop_token(t);
            }
            spec
        })
        .collect()
}

fn main() {
    let cfg = AgenticConfig::small();

    // -------------------------------------------------- 1. map/reduce fan-out
    let scene = map_reduce_fanout(&cfg);
    let mut sched = scheduler();
    let root = sched.submit(RequestSpec::new(1, scene.root_prompt.clone()).max_new_tokens(12));
    run_until_generated(&mut sched, &root, 2);

    let mut branches = to_branch_specs(&scene, 10);
    // Shard 0 maps a low-signal document: run it under a tighter per-branch
    // selection budget than the engine default.
    branches[0] = branches[0]
        .clone()
        .sparsity(SparsityOverride::none().with_budget(16));
    let pages_before = sched.pool_in_use();
    let out = sched.fork(1, JoinPolicy::All, &branches).expect("fork");
    assert_eq!(
        sched.pool_in_use(),
        pages_before,
        "fork is zero-copy: branches CoW-share every page up to the fork point"
    );
    let report = sched.run_to_completion(100_000);
    let map_outputs: Vec<Vec<u32>> = (10..10 + cfg.branches as u64)
        .map(|id| match sched.status(id) {
            Some(RequestStatus::Finished(tokens)) => tokens,
            other => panic!("map shard {id} did not finish: {other:?}"),
        })
        .collect();
    assert!(
        sched.join_status(out.group).expect("known group").resolved,
        "All join resolves once every shard finishes"
    );
    // The reduce step: one request over the root plus every shard's output.
    let mut reduce_prompt = scene.root_prompt.clone();
    for o in &map_outputs {
        reduce_prompt.extend_from_slice(o);
    }
    sched.submit(RequestSpec::new(99, reduce_prompt).max_new_tokens(8));
    let reduce_report = sched.run_to_completion(100_000);
    assert!(
        reduce_report.completed.iter().any(|(id, _)| *id == 99),
        "reduce completed"
    );
    println!(
        "map/reduce:  {} shards forked at {} pages ({} stayed), all joined, reduce done; \
         dag: {} forks / {} branches / {} joins",
        cfg.branches,
        pages_before,
        pages_before,
        report.dag.forks,
        report.dag.branches_spawned,
        report.dag.joins
    );

    // -------------------------------------------------- 2. speculative tool calls
    let scene = tool_call_branches(&cfg);
    let mut sched = scheduler();
    let root = sched.submit(RequestSpec::new(1, scene.root_prompt.clone()).max_new_tokens(12));
    run_until_generated(&mut sched, &root, 2);
    let out = sched
        .fork(1, JoinPolicy::FirstFinished, &to_branch_specs(&scene, 10))
        .expect("fork");
    let report = sched.run_to_completion(100_000);
    let js = sched.join_status(out.group).expect("known group");
    assert!(js.resolved, "one continuation finished");
    let winner = js.winner.expect("FirstFinished always has a winner");
    let cancelled = (10..10 + cfg.branches as u64)
        .filter(|&id| matches!(sched.status(id), Some(RequestStatus::Cancelled(_))))
        .count();
    assert!(cancelled >= 1, "losers are cascade-cancelled");
    assert!(
        report.dag.branch_cancels as usize >= cancelled,
        "cancels are counted"
    );
    assert!(
        sched.prefix_cache_entries() > 0,
        "cancelled losers donate their prefix"
    );
    println!(
        "tool calls:  branch {winner} finished first, {cancelled} speculative losers cancelled, \
         {} prefix-cache entries donated",
        sched.prefix_cache_entries()
    );

    // -------------------------------------------------- 3. best-of-N panel
    let scene = best_of_n(&cfg);
    let mut sched = scheduler();
    let root = sched.submit(RequestSpec::new(1, scene.root_prompt.clone()).max_new_tokens(12));
    run_until_generated(&mut sched, &root, 2);
    let out = sched
        .fork(1, JoinPolicy::BestScore, &to_branch_specs(&scene, 10))
        .expect("fork");
    let report = sched.run_to_completion(100_000);
    let js = sched.join_status(out.group).expect("known group");
    assert!(js.resolved, "BestScore waits for the whole panel");
    // Equal budgets, distinct ranker biases: the winner is the top bias.
    let expect = 10
        + (0..cfg.branches)
            .max_by_key(|&i| (scene.branches[i].score_bias, std::cmp::Reverse(i)))
            .unwrap() as u64;
    assert_eq!(js.winner, Some(expect), "the ranker's top candidate wins");
    assert_eq!(
        report.dag.branch_cancels, 0,
        "a scored panel runs to completion — nobody is cancelled"
    );
    println!(
        "best-of-{}:  candidate {} wins on ranker score; panel work = {} tokens",
        cfg.branches,
        expect,
        sched.work_tokens()
    );

    println!("\n{}", report.summary());
}
