//! The cluster front door end to end: scheduler replicas sharded over a
//! simulated device mesh, behind the prefix-affinity router.
//!
//! Two runs of the same shared-prefix persona workload through a 2-replica
//! [`Cluster`], each replica sharding decode attention over 4 simulated
//! devices:
//!
//! 1. **Prefix-affinity routing** — requests hash their `system + persona`
//!    prompt prefix, so every persona family lands on the replica whose
//!    prefix cache already holds it.
//! 2. **Least-loaded only** (`affinity_tokens = 0`) — the same workload
//!    spread purely by queue depth.
//!
//! The example asserts what the design promises: routing and placement are
//! latency-only (every request's tokens are bit-identical between the two
//! runs), affinity actually hits, multi-device sharding charges modeled
//! interconnect tokens, and the rolled-up [`MetricsSnapshot`] totals are
//! exact sums over the per-replica reports.
//!
//! ```text
//! cargo run --release --example cluster_serving
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use lserve::core::{
    Cluster, ClusterConfig, ClusterReport, EngineConfig, ModelExecutor, RequestSpec,
    SchedulerConfig,
};
use lserve::model::{ModelConfig, ModelWeights};
use lserve::workloads::{shared_prefix_workload, SharedPrefixConfig};

fn engine_cfg() -> EngineConfig {
    // Small pages so page accounting is visible at toy scale.
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = lserve::kvcache::PagingConfig::new(8, 4, lserve::quant::KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

/// Runs the persona workload through a fresh 2-replica cluster, one query
/// round per wave so earlier rounds seed the prefix caches the router's
/// affinity either exploits or wastes.
fn run_front_door(affinity_tokens: usize) -> (Cluster, ClusterReport) {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 42));
    let exec = Arc::new(ModelExecutor::new(weights, engine_cfg()));
    let mut scfg = SchedulerConfig::new(2048);
    scfg.chunk_tokens = 8;
    scfg.prefix_cache = true;
    scfg.devices = 4;
    let mut cluster = Cluster::new(
        exec,
        scfg,
        ClusterConfig {
            replicas: 2,
            affinity_tokens,
        },
    );
    let wl = SharedPrefixConfig::cluster();
    let specs = shared_prefix_workload(&wl);
    let mut id = 0u64;
    let mut report = None;
    for round in specs.chunks(wl.personas) {
        for spec in round {
            cluster.submit(
                RequestSpec::new(id, spec.prompt.clone()).max_new_tokens(spec.max_new_tokens),
            );
            id += 1;
        }
        report = Some(cluster.run_to_completion(100_000));
    }
    (cluster, report.expect("at least one round"))
}

fn outputs_by_id(report: &ClusterReport) -> BTreeMap<u64, Vec<u32>> {
    report
        .replicas
        .iter()
        .flat_map(|r| r.completed.iter().cloned())
        .collect()
}

fn main() {
    let wl = SharedPrefixConfig::cluster();
    println!(
        "== cluster front door: {} requests ({} personas x {} queries), \
         2 replicas x 4 simulated devices ==",
        wl.total_requests(),
        wl.personas,
        wl.queries_per_persona
    );

    let (affinity_cluster, affinity) = run_front_door(wl.affinity_prefix_len());
    let (blind_cluster, blind) = run_front_door(0);
    let astats = affinity_cluster.router_stats();
    let bstats = blind_cluster.router_stats();

    println!(
        "affinity routing:     {} routed, {} affinity hits, {} least-loaded, \
         {} prefix-hit tokens",
        astats.routed,
        astats.affinity_hits,
        astats.least_loaded,
        affinity.prefix_hit_tokens()
    );
    println!(
        "least-loaded routing: {} routed, {} affinity hits, {} least-loaded, \
         {} prefix-hit tokens",
        bstats.routed,
        bstats.affinity_hits,
        bstats.least_loaded,
        blind.prefix_hit_tokens()
    );

    // Routing is latency-only: the same request produces the same tokens no
    // matter which replica (or how many devices) served it.
    assert_eq!(affinity.completed(), wl.total_requests());
    assert_eq!(outputs_by_id(&affinity), outputs_by_id(&blind));
    assert!(astats.affinity_hits > 0, "affinity must route follow-ups");
    assert!(
        affinity.prefix_hit_tokens() >= blind.prefix_hit_tokens(),
        "keeping families together must not lose prefix reuse"
    );
    // Multi-device sharding charges modeled interconnect for cross-device
    // gathers on every replica that decoded.
    assert!(
        affinity.interconnect_tokens() > 0,
        "4-device replicas must charge cross-device gathers"
    );

    // The rolled-up snapshot's cluster totals are exact sums over replicas.
    let rollup = affinity.rollup().render();
    lserve::trace::validate_json(&rollup).expect("rollup renders valid JSON");
    assert_eq!(
        affinity.completed(),
        affinity
            .replicas
            .iter()
            .map(|r| r.completed.len())
            .sum::<usize>()
    );
    for (i, replica) in affinity.replicas.iter().enumerate() {
        println!(
            "replica{i}: {} completed, {} decode steps, interconnect {} tokens",
            replica.completed.len(),
            replica.decode_steps,
            replica.parallel.interconnect_tokens
        );
    }
    println!("rollup: {} bytes of MetricsSnapshot JSON", rollup.len());
    println!("\nok: outputs identical across routing modes; affinity wins on reuse");
}
