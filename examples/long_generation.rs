//! Long-generation (reasoning-style) workload: the paper's motivating scenario where
//! *decoding*, not prefilling, dominates (§1: 116 s prefill vs 540 s decode for a
//! 256K+20K o1-style trace).
//!
//! A multi-turn session drives one engine through several prompt+generate rounds on
//! the same growing context — the KV cache persists across turns — and reports how
//! the work per decode step stays bounded under LServe's sparsity while the dense
//! engine's grows with the context.
//!
//! ```text
//! cargo run --release --example long_generation
//! ```

use std::sync::Arc;

use lserve::core::{Engine, EngineConfig};
use lserve::model::{greedy_next_token, ModelConfig, ModelWeights};

const TURNS: usize = 4;
const PROMPT_PER_TURN: usize = 48;
const GEN_PER_TURN: usize = 96;

fn run(name: &str, mut cfg: EngineConfig) {
    // Scale geometry to the tiny model so sparsity engages within a few hundred
    // tokens: 8-token pages, 96-token budget.
    cfg.paging = lserve::kvcache::PagingConfig::new(8, 4, lserve::quant::KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    if cfg.dynamic_budget.is_some() {
        cfg.dynamic_budget = Some(96);
    }
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 77));
    let total = TURNS * (PROMPT_PER_TURN + GEN_PER_TURN) + 8;
    let mut pool = cfg.make_pool_for(&weights.config, total);
    let mut engine = Engine::new(weights, cfg);

    println!("{name}:");
    for turn in 0..TURNS {
        // Turn 1 prefills; later turns continue decoding over the same cache, with
        // the new user prompt absorbed token by token (the serving-system view of a
        // chat turn: no re-prefill of history).
        let prompt: Vec<u32> = (0..PROMPT_PER_TURN)
            .map(|i| ((turn * 31 + i * 7) % 90) as u32)
            .collect();
        let mut logits = if turn == 0 {
            engine
                .prefill(&mut pool, &prompt)
                .expect("pool sized")
                .logits
        } else {
            let mut last = Vec::new();
            for &t in &prompt {
                last = engine.decode_step(&mut pool, t).expect("pool sized").logits;
            }
            last
        };
        let before = engine.stats().decode_tokens_visited;
        for _ in 0..GEN_PER_TURN {
            let next = greedy_next_token(&logits);
            logits = engine
                .decode_step(&mut pool, next)
                .expect("pool sized")
                .logits;
        }
        let visited = engine.stats().decode_tokens_visited - before;
        println!(
            "  turn {} | context {:>4} tokens | KV rows visited/gen-step: {:>5.0} | pool pages {}",
            turn + 1,
            engine.context_len(),
            visited as f64 / GEN_PER_TURN as f64,
            pool.in_use(),
        );
    }
    println!();
}

fn main() {
    println!(
        "{TURNS} turns x ({PROMPT_PER_TURN} prompt + {GEN_PER_TURN} generated) tokens, one persistent KV cache\n"
    );
    run(
        "dense engine (work grows with context)",
        EngineConfig::dense(),
    );
    run(
        "lserve engine (work bounded by budget + streaming window)",
        EngineConfig::lserve_fp16(),
    );
    println!("The dense engine's per-step KV reads grow every turn; LServe's stay flat —");
    println!("the mechanism behind Figure 15's constant-latency decode at any context.");
}
