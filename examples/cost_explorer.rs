//! Cost-model explorer: ask "what would this configuration cost on an A100?" for
//! any context length — the question every table/figure harness automates.
//!
//! ```text
//! cargo run --release --example cost_explorer [seq_len_tokens]
//! ```

use lserve::costmodel::{decode_step, max_batch, prefill, GpuSpec, SystemModel};
use lserve::model::ModelConfig;

fn main() {
    let seq: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(131_072);
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama3_8b();
    println!("{} @ {} tokens on {}\n", model.name, seq, gpu.name);

    println!(
        "{:>14} {:>12} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "system", "decode ms", "attn ms", "gemm ms", "select ms", "prefill s", "batch"
    );
    for sys in [
        SystemModel::vllm(),
        SystemModel::qserve(),
        SystemModel::duo_attention(),
        SystemModel::minference(),
        SystemModel::quest(),
        SystemModel::lserve(),
    ] {
        let d = decode_step(&gpu, &model, &sys, seq, 1);
        let p = prefill(&gpu, &model, &sys, seq);
        let b = max_batch(&gpu, &model, &sys, seq);
        println!(
            "{:>14} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>10.1} {:>9}",
            sys.name,
            d.total() * 1e3,
            d.attention_s() * 1e3,
            d.gemm_s * 1e3,
            d.selector_s * 1e3,
            p.total(),
            if b == 0 {
                "OOM".to_string()
            } else {
                b.to_string()
            },
        );
    }
    println!("\nDecode is per step at batch 1; 'batch' is the largest batch whose KV");
    println!("fits next to the weights in 80 GB. Calibration notes live in");
    println!("crates/costmodel/src/kernels.rs and DESIGN.md.");
}
