//! Quickstart: build an LServe scheduler, submit a streaming request through
//! the handle-based API, watch its lifecycle events, and check the latency
//! metrics (TTFT in work tokens, deadline) the run reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use lserve::core::{
    EngineConfig, ModelExecutor, RequestSpec, Scheduler, SchedulerConfig, ServingEvent, SloClass,
};
use lserve::model::{ModelConfig, ModelWeights};

fn main() {
    // A tiny random-weight model (2 layers, GQA 4/2 heads). Real configs
    // (ModelConfig::llama3_8b() etc.) carry the paper's shapes for the cost model.
    let model = ModelConfig::tiny();
    let weights = Arc::new(ModelWeights::random(&model, 42));

    // LServe policy: 50% streaming heads, hierarchical paging, a dynamic token
    // budget, selector reuse interval 4. `lserve_fp16` keeps KV in FP16 so the only
    // approximation is sparsity. The geometry is scaled to the tiny model (8-token
    // physical pages, 4-token logical pages, 64-token budget) so a 96-token prompt
    // already exercises every sparsity path.
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = lserve::kvcache::PagingConfig::new(8, 4, lserve::quant::KvPrecision::Fp16);
    cfg.dynamic_budget = Some(64);
    cfg.prefill_tile = 8;
    let exec = Arc::new(ModelExecutor::new(Arc::clone(&weights), cfg));

    // The serving surface: a continuous-batching scheduler over a shared page
    // pool. Submitting a RequestSpec returns a handle whose event queue
    // streams the request's lifecycle as `step()` produces it.
    let mut scfg = SchedulerConfig::new(512);
    scfg.chunk_tokens = 16; // the prompt prefills in 16-token chunks
    let mut sched = Scheduler::new(Arc::clone(&exec), scfg);
    let prompt: Vec<u32> = (0..96).map(|i| (1 + i % 90) as u32).collect();
    let handle = sched.submit(
        RequestSpec::new(1, prompt.clone())
            .max_new_tokens(24)
            .class(SloClass::Interactive) // jumps queued batch traffic
            .deadline_work_tokens(300), // TTFT SLO, in work tokens
    );

    let mut generated = Vec::new();
    while !handle.is_terminal() {
        sched.step();
        for event in handle.drain_events() {
            match event {
                ServingEvent::Admitted => println!("admitted; prefilling in chunks"),
                ServingEvent::FirstToken { token } | ServingEvent::Token { token } => {
                    generated.push(token);
                }
                ServingEvent::Finished { reason, tokens } => {
                    println!(
                        "finished ({reason:?}): prompt ({} tokens) -> generated {tokens:?}",
                        prompt.len()
                    );
                }
                other => println!("{other:?}"),
            }
        }
    }
    let report = sched.report_snapshot();
    let metrics = report.request_metrics[0];
    println!(
        "TTFT {} work tokens (deadline 300 met: {}), {} tokens streamed",
        metrics.ttft_work_tokens,
        metrics.deadline_met == Some(true),
        generated.len(),
    );

    // Compare against the dense engine: same weights, no sparsity.
    let dense_cfg = EngineConfig::dense();
    let mut dense_sched = Scheduler::new(
        Arc::new(ModelExecutor::new(weights, dense_cfg)),
        SchedulerConfig::new(2048),
    );
    dense_sched.submit(RequestSpec::new(1, prompt).max_new_tokens(24));
    let reference = dense_sched.run_to_completion(10_000).completed[0].1.clone();
    let agree = generated
        .iter()
        .zip(&reference)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "dense agreement: {agree}/24 tokens (random weights + an aggressive 64-token \
budget diverge quickly; trained models tolerate sparsity far better — Table 2)"
    );
    println!(
        "pool usage after drain: {} pages in use, peak {}",
        sched.pool_in_use(),
        report.peak_pages
    );
}
