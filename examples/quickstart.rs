//! Quickstart: build an LServe engine, prefill a prompt, generate tokens, and
//! inspect the sparsity the engine actually exercised.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use lserve::core::{Engine, EngineConfig};
use lserve::model::{ModelConfig, ModelWeights};

fn main() {
    // A tiny random-weight model (2 layers, GQA 4/2 heads). Real configs
    // (ModelConfig::llama3_8b() etc.) carry the paper's shapes for the cost model.
    let model = ModelConfig::tiny();
    let weights = Arc::new(ModelWeights::random(&model, 42));

    // LServe policy: 50% streaming heads, hierarchical paging, a dynamic token
    // budget, selector reuse interval 4. `lserve_fp16` keeps KV in FP16 so the only
    // approximation is sparsity. The geometry is scaled to the tiny model (8-token
    // physical pages, 4-token logical pages, 64-token budget) so a 160-token run
    // already exercises every sparsity path.
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = lserve::kvcache::PagingConfig::new(8, 4, lserve::quant::KvPrecision::Fp16);
    cfg.dynamic_budget = Some(64);
    cfg.prefill_tile = 8;
    let mut pool = cfg.make_pool_for(&model, 512);
    let mut engine = Engine::new(Arc::clone(&weights), cfg);

    let prompt: Vec<u32> = (0..96).map(|i| (1 + i % 90) as u32).collect();
    let generated = engine
        .generate(&mut pool, &prompt, 24)
        .expect("pool sized for this sequence");
    println!(
        "prompt ({} tokens) -> generated {:?}",
        prompt.len(),
        generated
    );

    // Compare against the dense engine: same weights, no sparsity.
    let dense_cfg = EngineConfig::dense();
    let mut dense_pool = dense_cfg.make_pool_for(&model, 512);
    let mut dense = Engine::new(weights, dense_cfg);
    let reference = dense
        .generate(&mut dense_pool, &prompt, 24)
        .expect("pool sized");
    let agree = generated
        .iter()
        .zip(&reference)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "dense agreement: {agree}/24 tokens (random weights + an aggressive 64-token \
budget diverge quickly; trained models tolerate sparsity far better — Table 2)"
    );

    let stats = engine.stats();
    println!(
        "prefill block sparsity: {:.1}% of causal tiles skipped",
        100.0 * stats.prefill_sparsity()
    );
    println!(
        "decode page sparsity:   {:.1}% of pages skipped ({} steps)",
        100.0 * stats.decode_sparsity(),
        stats.decode_steps
    );
    println!(
        "pool usage: {} pages in use, peak {}",
        pool.in_use(),
        pool.peak_in_use()
    );
}
