//! Property tests spanning crates: selection→kernel equivalence, engine
//! equivalences, and allocator safety under arbitrary workloads.

use std::sync::Arc;

use lserve::attention::{decode_dense_head, masked_attention_reference};
use lserve::core::{Engine, EngineConfig};
use lserve::kvcache::{DenseHeadCache, PagePool, PagingConfig};
use lserve::model::{ModelConfig, ModelWeights};
use lserve::quant::KvPrecision;
use lserve::selector::{
    FlatSelector, HierarchicalSelector, PageSelector, ReusableSelector, Selection,
};
use lserve::tensor::{Matrix, SeededGaussian};
use proptest::prelude::*;

fn build_cache(seed: u64, tokens: usize, np: usize, nl: usize) -> (PagePool, DenseHeadCache) {
    let cfg = PagingConfig::new(np, nl, KvPrecision::Fp16);
    let mut pool = PagePool::new(cfg, cfg.pages_for(tokens) + 2, 8);
    let mut cache = DenseHeadCache::new();
    let mut g = SeededGaussian::new(seed);
    for _ in 0..tokens {
        let k: Vec<f32> = (0..8).map(|_| g.sample()).collect();
        let v: Vec<f32> = (0..8).map(|_| g.sample()).collect();
        assert!(cache.append(&mut pool, &k, &v));
    }
    (pool, cache)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the selector picks, the decode kernel over those pages must equal
    /// the masked reference restricted to the same token set.
    #[test]
    fn selected_decode_equals_masked_reference(
        seed in 0u64..500,
        tokens in 9usize..120,
        budget in 1usize..64,
    ) {
        let np = 8;
        let (pool, cache) = build_cache(seed, tokens, np, 4);
        let mut g = SeededGaussian::new(seed ^ 0xDEAD);
        let q: Vec<f32> = (0..8).map(|_| g.sample()).collect();
        let mut sel = HierarchicalSelector::new(true);
        let s = sel.select(&pool, &cache, &[&q], budget * np, 0);
        let (got, _) = decode_dense_head(&pool, &cache, &q, 0.35, Some(&s.pages));

        let k_all = Matrix::from_vec(tokens, 8, (0..tokens).flat_map(|t| cache.key(&pool, t)).collect());
        let v_all = Matrix::from_vec(tokens, 8, (0..tokens).flat_map(|t| cache.value(&pool, t)).collect());
        let q_m = Matrix::from_vec(1, 8, q.clone());
        let want = masked_attention_reference(&q_m, &k_all, &v_all, 0.35, |_, j| {
            s.pages.contains(&(j / np))
        });
        for (a, b) in got.iter().zip(want.row(0)) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Selections always include the most recent page, never an out-of-range page,
    /// and respect the page budget (up to the forced pages).
    #[test]
    fn selection_invariants(
        seed in 0u64..500,
        tokens in 5usize..200,
        budget_pages in 1usize..32,
        flat in proptest::bool::ANY,
    ) {
        let np = 8;
        let (pool, cache) = build_cache(seed, tokens, np, 4);
        let mut g = SeededGaussian::new(seed ^ 77);
        let q: Vec<f32> = (0..8).map(|_| g.sample()).collect();
        let s: Selection = if flat {
            FlatSelector::new(true).select(&pool, &cache, &[&q], budget_pages * np, 0)
        } else {
            HierarchicalSelector::new(true).select(&pool, &cache, &[&q], budget_pages * np, 0)
        };
        let last = cache.num_pages() - 1;
        prop_assert!(s.pages.contains(&last), "last page missing: {:?}", s.pages);
        prop_assert!(s.pages.iter().all(|&p| p < cache.num_pages()));
        prop_assert!(s.pages.len() <= budget_pages.max(2));
        let mut sorted = s.pages.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted, s.pages);
    }

    /// A reusable selector's replayed selection equals the fresh one within a chunk
    /// when the cache does not grow.
    #[test]
    fn reuse_is_transparent_on_static_cache(
        seed in 0u64..200,
        tokens in 33usize..150,
        interval in 2usize..8,
    ) {
        let (pool, cache) = build_cache(seed, tokens, 8, 4);
        let mut g = SeededGaussian::new(seed ^ 3);
        let q: Vec<f32> = (0..8).map(|_| g.sample()).collect();
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), interval);
        let fresh = sel.select(&pool, &cache, &[&q], 64, 0);
        for step in 1..interval {
            let replay = sel.select(&pool, &cache, &[&q], 64, step);
            prop_assert!(replay.reused);
            prop_assert_eq!(&replay.pages, &fresh.pages);
        }
        let rescore = sel.select(&pool, &cache, &[&q], 64, interval);
        prop_assert!(!rescore.reused);
    }

    /// The engine's generation is a pure function of (weights seed, config, prompt).
    #[test]
    fn engine_determinism(
        wseed in 0u64..50,
        plen in 4usize..24,
        lserve in proptest::bool::ANY,
    ) {
        let w = Arc::new(ModelWeights::random(&ModelConfig::tiny(), wseed));
        let prompt: Vec<u32> = (0..plen).map(|i| ((i * 7) % 90) as u32).collect();
        let cfg = if lserve { EngineConfig::lserve() } else { EngineConfig::dense() };
        let run = |cfg: EngineConfig| {
            let mut pool = cfg.make_pool_for(&w.config, 256);
            let mut e = Engine::new(Arc::clone(&w), cfg);
            e.generate(&mut pool, &prompt, 8).unwrap()
        };
        prop_assert_eq!(run(cfg.clone()), run(cfg));
    }

    /// Pool accounting: after any engine run and release, zero pages remain.
    #[test]
    fn no_page_leaks(
        wseed in 0u64..50,
        plen in 4usize..32,
        steps in 1usize..24,
    ) {
        let w = Arc::new(ModelWeights::random(&ModelConfig::tiny(), wseed));
        let cfg = EngineConfig::lserve_fp16();
        let mut pool = cfg.make_pool_for(&w.config, 256);
        let mut e = Engine::new(w, cfg);
        let prompt: Vec<u32> = (0..plen).map(|i| (i % 90) as u32).collect();
        e.generate(&mut pool, &prompt, steps).unwrap();
        e.release(&mut pool);
        prop_assert_eq!(pool.in_use(), 0);
    }
}
