//! Tracing is observation, never behavior: for any workload and policy
//! combination, a run recording into the ring sink emits outputs bit-identical
//! to an untraced run — across {FP16, INT4} KV × {replay, swap} preemption ×
//! {sync, async} migration — and the trace itself is bit-reproducible across
//! repeated runs (the work-token clock counts modeled work, not wall time).
//!
//! The deterministic anchor pins the export contract end-to-end: the
//! oversubscribed swap+async scene produces spans from all five engine layers
//! (scheduler, executor phase, attention shard, copy engine, selector), the
//! Chrome trace-event document validates as JSON with monotonic timestamps
//! per lane, and a tiny ring sink bounds retention while counting drops.

use std::collections::HashMap;
use std::sync::Arc;

use lserve::core::{
    sequence_pages_estimate, AdmissionPolicy, EngineConfig, MigrationMode, ModelExecutor,
    PreemptionPolicy, RequestSpec, Scheduler, SchedulerConfig,
};
use lserve::kvcache::PagingConfig;
use lserve::model::{ModelConfig, ModelWeights};
use lserve::quant::KvPrecision;
use lserve::trace::{chrome_trace_json, lane, validate_json, EventKind, TraceEvent, Tracer};
use proptest::prelude::*;

fn weights(seed: u64) -> Arc<ModelWeights> {
    Arc::new(ModelWeights::random(&ModelConfig::tiny(), seed))
}

/// Small-page FP16 LServe policy: page pressure shows up at toy context lengths.
fn small_page_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

use sequence_pages_estimate as estimate;

/// `ServingReport::completed`: `(request id, generated tokens)` pairs.
type Completed = Vec<(u64, Vec<u32>)>;

/// The five-layer scene: oversubscribed pool, swap preemption, async
/// migration, selection-driven demotion — every traced subsystem fires.
fn five_layer_scene() -> (EngineConfig, Vec<RequestSpec>) {
    let mut cfg = small_page_cfg();
    cfg.dynamic_budget = Some(24);
    cfg.demote_after_chunks = Some(1);
    cfg.reuse_interval = 2;
    let requests = (0..3u64)
        .map(|i| {
            RequestSpec::new(
                i,
                (0..40 + 9 * i as usize)
                    .map(|t| ((t * 3 + i as usize * 7) % 90) as u32)
                    .collect(),
            )
            .max_new_tokens(16)
        })
        .collect();
    (cfg, requests)
}

fn run_scene(
    cfg: &EngineConfig,
    w: &Arc<ModelWeights>,
    requests: &[RequestSpec],
    pool_pages: usize,
    preemption: PreemptionPolicy,
    migration: MigrationMode,
    tracer: Tracer,
) -> Completed {
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = 8;
    scfg.admission = AdmissionPolicy::FirstChunk;
    scfg.preemption = preemption;
    scfg.migration = migration;
    scfg.tracer = tracer;
    let mut sched = Scheduler::new(
        Arc::new(ModelExecutor::new(Arc::clone(w), cfg.clone())),
        scfg,
    );
    for r in requests {
        sched.submit(r.clone());
    }
    let report = sched.run_to_completion(200_000);
    assert_eq!(sched.pool_in_use(), 0, "hot pages leaked");
    assert_eq!(sched.pool_cold_in_use(), 0, "cold pages leaked");
    report.completed
}

fn trace_five_layer_scene(capacity: usize) -> (Completed, Vec<TraceEvent>, u64) {
    let w = weights(23);
    let (cfg, requests) = five_layer_scene();
    let single_max = requests
        .iter()
        .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
        .max()
        .unwrap();
    let tracer = Tracer::ring(capacity);
    let completed = run_scene(
        &cfg,
        &w,
        &requests,
        single_max + single_max / 2,
        PreemptionPolicy::Swap,
        MigrationMode::Async,
        tracer.clone(),
    );
    let (events, dropped) = tracer.drain();
    (completed, events, dropped)
}

/// The acceptance anchor: all five engine layers emit, the export validates,
/// and both outputs and the trace itself are bit-reproducible.
#[test]
fn five_layer_trace_exports_and_reproduces() {
    let (completed, events, dropped) = trace_five_layer_scene(1 << 16);
    assert_eq!(completed.len(), 3, "scene must complete all requests");
    assert_eq!(
        dropped, 0,
        "default-capacity ring must not evict this scene"
    );

    // Every lane fires: scheduler lifecycle, executor phases, attention
    // shards, copy-engine transfers, selector rescores.
    for (pid, what) in [
        (lane::SCHEDULER, "scheduler"),
        (lane::EXECUTOR, "executor"),
        (lane::WORKERS, "attention shard"),
        (lane::COPY, "copy engine"),
        (lane::SELECTOR, "selector"),
    ] {
        assert!(
            events.iter().any(|e| e.pid == pid),
            "no {what} events (pid {pid})"
        );
    }
    // Spans, instants, and counter tracks all present.
    for kind in [EventKind::Span, EventKind::Instant, EventKind::Counter] {
        assert!(events.iter().any(|e| e.kind == kind), "missing {kind:?}");
    }
    for counter in ["pages", "sequences"] {
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::Counter && e.name == counter),
            "missing counter track {counter}"
        );
    }

    // The export is valid JSON and carries the lane metadata.
    let doc = chrome_trace_json(&events, dropped).render();
    validate_json(&doc).expect("chrome export must be valid JSON");
    assert!(doc.contains("\"traceEvents\""));
    assert!(doc.contains("work-token ticks"));

    // Spans are recorded at close, and retrospective spans (e.g. "queued")
    // may start before previously recorded events — but within a (pid, tid)
    // track, close times (`ts + dur`; `ts` for points) never regress, so the
    // exporter's stable ts-sort yields a well-formed track.
    let mut last: HashMap<(u32, u64), u64> = HashMap::new();
    for e in &events {
        let close = e.ts + e.dur;
        let cursor = last.entry((e.pid, e.tid)).or_insert(0);
        assert!(
            close >= *cursor,
            "lane (pid {}, tid {}) closed backwards: {} after {}",
            e.pid,
            e.tid,
            close,
            cursor
        );
        *cursor = close;
    }

    // Bit-reproducible: the clock counts modeled work, so a second run yields
    // the same outputs and the same trace, event for event.
    let (completed2, events2, dropped2) = trace_five_layer_scene(1 << 16);
    assert_eq!(completed2, completed, "outputs must be deterministic");
    assert_eq!(events2, events, "trace must be bit-reproducible");
    assert_eq!(dropped2, dropped);
}

/// A tiny ring keeps only the most recent events — bounded memory on
/// arbitrarily long runs — while the drop counter owns the difference.
#[test]
fn ring_sink_bounds_retention_and_counts_drops() {
    let (full_completed, full_events, _) = trace_five_layer_scene(1 << 16);
    let (completed, events, dropped) = trace_five_layer_scene(64);
    assert_eq!(
        completed, full_completed,
        "ring capacity must not affect outputs"
    );
    assert_eq!(events.len(), 64, "ring must fill to capacity, not beyond");
    assert_eq!(
        events.len() as u64 + dropped,
        full_events.len() as u64,
        "retained + dropped must account for every recorded event"
    );
    // The ring keeps the *tail* of the run.
    assert_eq!(events, full_events[full_events.len() - 64..]);
    // The export surfaces the loss.
    let doc = chrome_trace_json(&events, dropped).render();
    validate_json(&doc).unwrap();
    assert!(doc.contains("\"dropped_events\""));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance property: traced ≡ untraced, token for token, across
    /// {FP16, INT4} × {replay, swap} × {sync, async}, under enough pool
    /// pressure to exercise preemption and (when enabled) selection-driven
    /// demotion. The trace clock only reads modeled work the run already
    /// performs, so recording can never perturb it.
    #[test]
    fn traced_outputs_match_untraced_runs(
        wseed in 0u64..20,
        chunk in 3usize..16,
        slack in 0usize..50,
        quantized in proptest::bool::ANY,
        swap in proptest::bool::ANY,
        async_migration in proptest::bool::ANY,
        demote in proptest::bool::ANY,
    ) {
        let w = weights(wseed);
        let mut cfg = small_page_cfg();
        if quantized {
            cfg.paging = PagingConfig::new(8, 4, KvPrecision::Int4);
        }
        if demote {
            cfg.dynamic_budget = Some(24);
            cfg.demote_after_chunks = Some(1);
        }
        let requests: Vec<RequestSpec> = (0..3u64)
            .map(|i| {
                RequestSpec::new(
                    i,
                    (0..26 + 9 * i as usize)
                        .map(|t| ((t * 3 + i as usize * 7) % 90) as u32)
                        .collect(),
                )
                .max_new_tokens(8)
            })
            .collect();
        let single_max = requests
            .iter()
            .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
            .max()
            .unwrap();
        let preemption = if swap {
            PreemptionPolicy::Swap
        } else {
            PreemptionPolicy::Replay
        };
        let migration = if async_migration {
            MigrationMode::Async
        } else {
            MigrationMode::Sync
        };
        let run = |tracer: Tracer| {
            run_scene(
                &cfg,
                &w,
                &requests,
                single_max + slack,
                preemption,
                migration,
                tracer,
            )
        };
        let untraced = run(Tracer::disabled());
        let tracer = Tracer::ring(1 << 16);
        let traced = run(tracer.clone());
        prop_assert_eq!(untraced.len(), 3, "scene must complete all requests");
        prop_assert_eq!(
            &traced, &untraced,
            "tracing changed outputs (wseed {} chunk {} slack {} quantized {} \
             swap {} async {} demote {})",
            wseed, chunk, slack, quantized, swap, async_migration, demote
        );
        let (events, _) = tracer.drain();
        prop_assert!(!events.is_empty(), "traced run must record events");
        let doc = chrome_trace_json(&events, 0).render();
        prop_assert!(validate_json(&doc).is_ok(), "export must validate");
    }
}
