//! Request-DAG properties: a branch forked off a live sequence is a *real*
//! request — whatever the fork point, join policy, per-branch sparsity
//! override, KV precision, preemption policy, or migration engine, every
//! surviving branch's output is bit-identical to a solo run that replays its
//! full token history (parent prompt + tokens generated before the fork +
//! branch suffix) under the same positional sparsity schedule. And forking
//! never copies a page: branches CoW-share the parent's pool pages, so page
//! conservation holds through fork/join/cancel cycles.

use std::sync::Arc;

use lserve::core::{
    sequence_pages_estimate, AdmissionPolicy, BranchSpec, EngineConfig, JoinPolicy, MigrationMode,
    ModelExecutor, PreemptionPolicy, RequestHandle, RequestSpec, Scheduler, SchedulerConfig,
    ServingEvent, SparsityOverride,
};
use lserve::kvcache::PagingConfig;
use lserve::model::{ModelConfig, ModelWeights};
use lserve::quant::KvPrecision;
use proptest::prelude::*;

fn weights(seed: u64) -> Arc<ModelWeights> {
    Arc::new(ModelWeights::random(&ModelConfig::tiny(), seed))
}

/// Small-page LServe policy with a real dynamic selection budget, so
/// per-branch budget/retention overrides actually change the selector's
/// work.
fn dag_cfg(quantized: bool) -> EngineConfig {
    let mut cfg = EngineConfig::lserve_with_budget(16);
    cfg.paging = PagingConfig::new(
        8,
        4,
        if quantized {
            KvPrecision::Int4
        } else {
            KvPrecision::Fp16
        },
    );
    cfg.prefill_tile = 8;
    cfg
}

use sequence_pages_estimate as estimate;

/// Steps until request `h` has generated `want` tokens, returning them.
fn run_until_generated(sched: &mut Scheduler, h: &RequestHandle, want: usize) -> Vec<u32> {
    let mut got = Vec::new();
    for _ in 0..10_000 {
        if got.len() >= want {
            return got;
        }
        sched.step();
        for e in h.drain_events() {
            if let ServingEvent::FirstToken { token } | ServingEvent::Token { token } = e {
                got.push(token);
            }
        }
    }
    panic!("parent never generated {want} tokens");
}

/// The branch's solo reference: a fresh scheduler, a generous pool, the same
/// chunk size (so the tile grid is identical), and the branch's full token
/// history as the prompt with the same positional sparsity schedule.
fn run_solo(cfg: &EngineConfig, w: &Arc<ModelWeights>, chunk: usize, req: RequestSpec) -> Vec<u32> {
    let pool_pages = estimate(cfg, &w.config, req.prompt.len() + req.max_new_tokens) * 2 + 16;
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = chunk;
    let mut solo = Scheduler::new(
        Arc::new(ModelExecutor::new(Arc::clone(w), cfg.clone())),
        scfg,
    );
    let id = req.id;
    solo.submit(req);
    let report = solo.run_to_completion(100_000);
    assert_eq!(solo.pool_in_use(), 0);
    let (got_id, tokens) = report.completed.into_iter().next().expect("solo completes");
    assert_eq!(got_id, id);
    tokens
}

fn override_for(kind: usize) -> SparsityOverride {
    match kind {
        0 => SparsityOverride::none(),
        1 => SparsityOverride::none().with_budget(4),
        2 => SparsityOverride::none().with_retention_permille(500),
        _ => SparsityOverride::none()
            .with_budget(6)
            .with_retention_permille(700),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance property: across {FP16, INT4} x {replay, swap} x
    /// {sync, async} x prefix cache on/off x per-branch sparsity overrides
    /// x fork depth, every surviving branch of an `All` join is bit-identical
    /// to its solo replay, and every page returns to the pool.
    #[test]
    fn surviving_branches_match_solo_replays(
        wseed in 0u64..10,
        quantized in proptest::bool::ANY,
        swap in proptest::bool::ANY,
        async_migration in proptest::bool::ANY,
        prefix in proptest::bool::ANY,
        override_kind in 0usize..4,
        fork_after in 1usize..4,
        slack in 0usize..32,
    ) {
        let w = weights(wseed);
        let cfg = dag_cfg(quantized);
        let chunk = 8;
        let parent_prompt: Vec<u32> = (0..16).map(|t| ((t * 5 + 3) % 90) as u32).collect();
        let suffixes: [&[u32]; 2] = [&[60, 61, 62], &[70, 71]];
        let branch_gen = 6usize;

        // The pool comfortably fits any single full branch history (so
        // nothing is TooLarge even when a spilled branch replays from
        // scratch) but is tight enough under `slack` that parent + two
        // branches can contend.
        let full_max = estimate(
            &cfg,
            &w.config,
            parent_prompt.len() + fork_after + 3 + branch_gen,
        );
        let mut scfg = SchedulerConfig::new(full_max * 2 + slack);
        scfg.chunk_tokens = chunk;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.prefix_cache = prefix;
        scfg.preemption = if swap { PreemptionPolicy::Swap } else { PreemptionPolicy::Replay };
        scfg.migration = if async_migration { MigrationMode::Async } else { MigrationMode::Sync };
        let mut sched = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
            scfg,
        );
        let hp = sched.submit(
            RequestSpec::new(1, parent_prompt.clone()).max_new_tokens(fork_after + 8),
        );
        let gen_at_fork = run_until_generated(&mut sched, &hp, fork_after);
        let boundary = parent_prompt.len() + gen_at_fork.len();
        let over = override_for(override_kind);
        let branches: Vec<BranchSpec> = suffixes
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut b = BranchSpec::new(10 + i as u64, s.to_vec()).max_new_tokens(branch_gen);
                if i == 0 {
                    b = b.sparsity(over);
                }
                b
            })
            .collect();
        let pages_before = sched.pool_in_use();
        sched.fork(1, JoinPolicy::All, &branches).expect("fork");
        prop_assert_eq!(
            sched.pool_in_use(),
            pages_before,
            "fork must be zero-copy"
        );
        let report = sched.run_to_completion(200_000);
        prop_assert_eq!(report.completed.len(), 3, "rejected: {:?}", report.rejected);

        for (i, s) in suffixes.iter().enumerate() {
            let id = 10 + i as u64;
            let got = &report
                .completed
                .iter()
                .find(|(rid, _)| *rid == id)
                .expect("branch completed")
                .1;
            let mut history = parent_prompt.clone();
            history.extend_from_slice(&gen_at_fork);
            history.extend_from_slice(s);
            let mut spec = RequestSpec::new(id, history).max_new_tokens(branch_gen);
            if i == 0 {
                spec = spec.sparsity_from(boundary, over);
            }
            let want = run_solo(&cfg, &w, chunk, spec);
            prop_assert_eq!(got, &want, "branch {} diverged from its solo replay", id);
        }
        sched.flush_prefix_cache();
        prop_assert_eq!(sched.pool_in_use(), 0, "page conservation through fork/join");
    }

    /// Join/cancel conservation: under `FirstFinished`, the losers are
    /// cancelled mid-flight — across preemption policies, precisions, and
    /// overrides, the winner still matches its solo replay and every page
    /// (including the cancelled losers' CoW shares) returns to the pool.
    #[test]
    fn first_finished_winner_matches_solo_and_conserves_pages(
        wseed in 0u64..10,
        quantized in proptest::bool::ANY,
        swap in proptest::bool::ANY,
        prefix in proptest::bool::ANY,
        override_on_loser in proptest::bool::ANY,
    ) {
        let w = weights(wseed);
        let cfg = dag_cfg(quantized);
        let chunk = 8;
        let parent_prompt: Vec<u32> = (0..16).map(|t| ((t * 7 + 1) % 90) as u32).collect();
        let full_max = estimate(&cfg, &w.config, parent_prompt.len() + 2 + 3 + 24);
        let mut scfg = SchedulerConfig::new(full_max * 2 + 8);
        scfg.chunk_tokens = chunk;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.prefix_cache = prefix;
        scfg.preemption = if swap { PreemptionPolicy::Swap } else { PreemptionPolicy::Replay };
        let mut sched = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
            scfg,
        );
        let hp = sched.submit(RequestSpec::new(1, parent_prompt.clone()).max_new_tokens(10));
        let gen_at_fork = run_until_generated(&mut sched, &hp, 2);
        let mut loser = BranchSpec::new(11, vec![70, 71, 72]).max_new_tokens(24);
        if override_on_loser {
            loser = loser.sparsity(SparsityOverride::none().with_budget(4));
        }
        let out = sched
            .fork(
                1,
                JoinPolicy::FirstFinished,
                &[BranchSpec::new(10, vec![60, 61]).max_new_tokens(3), loser],
            )
            .expect("fork");
        let report = sched.run_to_completion(200_000);
        let js = sched.join_status(out.group).expect("known group");
        prop_assert!(js.resolved);
        prop_assert_eq!(js.winner, Some(10), "the short branch finishes first");
        prop_assert!(report.dag.branch_cancels >= 1, "the loser was cancelled");

        let mut history = parent_prompt.clone();
        history.extend_from_slice(&gen_at_fork);
        history.extend_from_slice(&[60, 61]);
        let want = run_solo(&cfg, &w, chunk, RequestSpec::new(10, history).max_new_tokens(3));
        let got = &report
            .completed
            .iter()
            .find(|(rid, _)| *rid == 10)
            .expect("winner completed")
            .1;
        prop_assert_eq!(got, &want, "winner diverged from its solo replay");
        sched.flush_prefix_cache();
        prop_assert_eq!(sched.pool_in_use(), 0, "cancelled losers leak no pages");
    }
}

/// Deterministic anchor: a pool sized for ~1.5 sequences forces
/// preemption/resume cycles while two branches race the parent, and every
/// surviving branch still replays bit-identically.
#[test]
fn branches_survive_forced_preemption_and_match_solo() {
    let w = weights(23);
    let cfg = dag_cfg(false);
    let chunk = 8;
    let parent_prompt: Vec<u32> = (0..24).map(|t| ((t * 5 + 3) % 90) as u32).collect();
    let branch_gen = 10usize;
    let full_max = estimate(&cfg, &w.config, parent_prompt.len() + 2 + 3 + branch_gen);
    let mut scfg = SchedulerConfig::new(full_max + full_max / 2);
    scfg.chunk_tokens = chunk;
    scfg.admission = AdmissionPolicy::FirstChunk;
    let mut sched = Scheduler::new(
        Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
        scfg,
    );
    let hp = sched.submit(RequestSpec::new(1, parent_prompt.clone()).max_new_tokens(12));
    let gen_at_fork = run_until_generated(&mut sched, &hp, 2);
    sched
        .fork(
            1,
            JoinPolicy::All,
            &[
                BranchSpec::new(10, vec![60, 61, 62]).max_new_tokens(branch_gen),
                BranchSpec::new(11, vec![70, 71]).max_new_tokens(branch_gen),
            ],
        )
        .expect("fork");
    let report = sched.run_to_completion(200_000);
    assert!(
        report.preemptions > 0,
        "a pool for ~1.5 sequences must force preemption among 3 racers"
    );
    assert_eq!(report.completed.len(), 3, "rejected: {:?}", report.rejected);
    for (id, suffix) in [(10u64, vec![60, 61, 62]), (11, vec![70, 71])] {
        let mut history = parent_prompt.clone();
        history.extend_from_slice(&gen_at_fork);
        history.extend_from_slice(&suffix);
        let want = run_solo(
            &cfg,
            &w,
            chunk,
            RequestSpec::new(id, history).max_new_tokens(branch_gen),
        );
        let got = &report
            .completed
            .iter()
            .find(|(rid, _)| *rid == id)
            .unwrap()
            .1;
        assert_eq!(got, &want, "branch {id} diverged under preemption");
    }
    assert_eq!(
        sched.pool_in_use(),
        0,
        "page conservation after preemptions"
    );
}
