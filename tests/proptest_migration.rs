//! Migration-mode determinism: the asynchronous copy engine must be a pure
//! accounting change. For any workload, `LSERVE_MIGRATION`-equivalent
//! `MigrationMode::Async` runs emit outputs bit-identical to `Sync` runs and
//! to per-request solo runs — across FP16/INT4 KV, replay/swap preemption,
//! prefix caching on/off, and selection-driven demotion on/off. Only the
//! modeled stall accounting (and therefore the latency numbers) may differ.
//!
//! The in-flight page-state semantics behind this (demote-while-migrating,
//! CoW forks of migrating pages, demand forcing, the prefetch ledger) are
//! pinned by unit tests in `crates/kvcache/tests/async_migration.rs`.

use std::sync::Arc;

use lserve::core::{
    sequence_pages_estimate, AdmissionPolicy, EngineConfig, MigrationMode, ModelExecutor,
    PreemptionPolicy, RequestSpec, Scheduler, SchedulerConfig,
};
use lserve::kvcache::PagingConfig;
use lserve::model::{ModelConfig, ModelWeights};
use lserve::quant::KvPrecision;
use proptest::prelude::*;

fn weights(seed: u64) -> Arc<ModelWeights> {
    Arc::new(ModelWeights::random(&ModelConfig::tiny(), seed))
}

/// Small-page FP16 LServe policy: page pressure shows up at toy context lengths.
fn small_page_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

use sequence_pages_estimate as estimate;

fn run_solo(cfg: &EngineConfig, w: &Arc<ModelWeights>, chunk: usize, req: RequestSpec) -> Vec<u32> {
    let pool_pages = estimate(cfg, &w.config, req.prompt.len() + req.max_new_tokens) * 2 + 16;
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = chunk;
    scfg.migration = MigrationMode::Sync; // the pre-engine baseline
    let mut solo = Scheduler::new(
        Arc::new(ModelExecutor::new(Arc::clone(w), cfg.clone())),
        scfg,
    );
    let id = req.id;
    solo.submit(req);
    let report = solo.run_to_completion(100_000);
    assert_eq!(solo.pool_in_use(), 0);
    let (got_id, tokens) = report.completed.into_iter().next().expect("solo completes");
    assert_eq!(got_id, id);
    tokens
}

/// Deterministic anchor for the acceptance criterion: an oversubscribed scene
/// with swap preemption and selection-driven demotion, where the async engine
/// must (a) leave every output token untouched and (b) hide most of the
/// transfer work the sync baseline stalls on — including selector-driven
/// prefetches that actually hit.
#[test]
fn async_migration_hides_stalls_without_touching_outputs() {
    let w = weights(23);
    let mut cfg = small_page_cfg();
    // Three pages of selection budget: tight enough to demote, loose enough
    // that the top-k churns across rescores — churn is what prefetch predicts
    // (a 2-page budget on this model is perfectly stable and can never hit).
    cfg.dynamic_budget = Some(24);
    cfg.demote_after_chunks = Some(1);
    cfg.reuse_interval = 2;
    let requests: Vec<RequestSpec> = (0..3u64)
        .map(|i| {
            RequestSpec::new(
                i,
                (0..40 + 9 * i as usize)
                    .map(|t| ((t * 3 + i as usize * 7) % 90) as u32)
                    .collect(),
            )
            .max_new_tokens(16)
        })
        .collect();
    let single_max = requests
        .iter()
        .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
        .max()
        .unwrap();
    let run = |mode: MigrationMode| {
        let mut scfg = SchedulerConfig::new(single_max + single_max / 2);
        scfg.chunk_tokens = 8;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.preemption = PreemptionPolicy::Swap;
        scfg.migration = mode;
        let mut sched = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
            scfg,
        );
        for r in &requests {
            sched.submit(r.clone());
        }
        let report = sched.run_to_completion(200_000);
        assert_eq!(sched.pool_in_use(), 0, "hot pages leaked under {mode:?}");
        assert_eq!(
            sched.pool_cold_in_use(),
            0,
            "cold pages leaked under {mode:?}"
        );
        report
    };
    let sync = run(MigrationMode::Sync);
    let async_ = run(MigrationMode::Async);
    assert_eq!(sync.completed.len(), 3, "rejected: {:?}", sync.rejected);
    assert_eq!(async_.completed, sync.completed, "mode changed outputs");
    assert!(
        sync.pages_demoted > 0,
        "scene must generate migration traffic"
    );
    assert!(
        sync.migration_stall_tokens > 0,
        "sync charges every transfer as stall"
    );
    assert_eq!(sync.hidden_transfer_tokens, 0);
    assert_eq!(sync.migration_overlap_ratio(), 0.0);
    assert!(
        async_.migration_stall_tokens < sync.migration_stall_tokens,
        "the copy engine must hide stall work (async {} vs sync {})",
        async_.migration_stall_tokens,
        sync.migration_stall_tokens
    );
    assert!(async_.hidden_transfer_tokens > 0);
    assert!(async_.migration_overlap_ratio() > 0.5);
    assert!(async_.prefetch_issued > 0, "selector prefetch must fire");
    assert!(
        async_.prefetch_hits > 0,
        "recency-ranked prefetches must land ({} issued, {} wasted)",
        async_.prefetch_issued,
        async_.prefetch_wasted
    );
    assert_eq!(sync.prefetch_issued, 0, "prefetch is an async-mode concept");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance property: async ≡ sync ≡ solo, token for token, across
    /// {FP16, INT4} × {replay, swap} × prefix cache on/off × demotion on/off,
    /// under enough pool pressure to exercise preemption and (when enabled)
    /// selection-driven demotion with prefetch.
    #[test]
    fn async_outputs_match_sync_and_solo_runs(
        wseed in 0u64..20,
        chunk in 3usize..16,
        slack in 0usize..50,
        quantized in proptest::bool::ANY,
        swap in proptest::bool::ANY,
        prefix_cache in proptest::bool::ANY,
        demote in proptest::bool::ANY,
        budget_pages in 2usize..4,
        demote_after in 1usize..3,
    ) {
        let w = weights(wseed);
        let mut cfg = small_page_cfg();
        if quantized {
            cfg.paging = PagingConfig::new(8, 4, KvPrecision::Int4);
        }
        if demote {
            // A 3-page budget churns its top-k across rescores (prefetch can
            // hit); a 2-page budget is stable (prefetch is pure waste). Both
            // must stay bit-identical. demote_after > 1 keeps demotions in
            // flight across swap park/resume, covering the resume reservation.
            cfg.dynamic_budget = Some(8 * budget_pages);
            cfg.demote_after_chunks = Some(demote_after);
        }
        let requests: Vec<RequestSpec> = (0..3u64)
            .map(|i| {
                RequestSpec::new(
                    i,
                    (0..26 + 9 * i as usize)
                        .map(|t| ((t * 3 + i as usize * 7) % 90) as u32)
                        .collect(),
                )
                .max_new_tokens(8)
            })
            .collect();
        let single_max = requests
            .iter()
            .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
            .max()
            .unwrap();
        let run = |mode: MigrationMode| {
            let mut scfg = SchedulerConfig::new(single_max + slack);
            scfg.chunk_tokens = chunk;
            scfg.admission = AdmissionPolicy::FirstChunk;
            scfg.prefix_cache = prefix_cache;
            scfg.preemption = if swap {
                PreemptionPolicy::Swap
            } else {
                PreemptionPolicy::Replay
            };
            scfg.migration = mode;
            let mut sched = Scheduler::new(
                Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
                scfg,
            );
            for r in &requests {
                sched.submit(r.clone());
            }
            let report = sched.run_to_completion(200_000);
            sched.flush_prefix_cache();
            assert_eq!(
                sched.pool_in_use(),
                0,
                "hot pages leaked under {mode:?} (wseed {wseed} chunk {chunk} \
                 slack {slack} quantized {quantized} swap {swap} \
                 prefix {prefix_cache} demote {demote})"
            );
            assert_eq!(
                sched.pool_cold_in_use(),
                0,
                "cold pages leaked under {mode:?}"
            );
            report
        };
        let sync = run(MigrationMode::Sync);
        let async_ = run(MigrationMode::Async);
        prop_assert_eq!(sync.completed.len(), 3, "rejected: {:?}", sync.rejected);
        prop_assert_eq!(
            &async_.completed, &sync.completed,
            "async outputs diverged from sync (wseed {} chunk {} slack {} \
             quantized {} swap {} prefix {} demote {})",
            wseed, chunk, slack, quantized, swap, prefix_cache, demote
        );
        // Sync hides nothing; async never stalls on *more* transfer work than
        // sync moved in total.
        prop_assert_eq!(sync.hidden_transfer_tokens, 0);
        prop_assert!(
            async_.migration_stall_tokens <= sync.migration_stall_tokens,
            "async stalled on {} tokens but sync only moved {}",
            async_.migration_stall_tokens,
            sync.migration_stall_tokens
        );
        for req in &requests {
            let want = run_solo(&cfg, &w, chunk, req.clone());
            let got = &async_
                .completed
                .iter()
                .find(|(id, _)| *id == req.id)
                .unwrap()
                .1;
            prop_assert_eq!(got, &want, "request {} diverged under async", req.id);
        }
    }
}
