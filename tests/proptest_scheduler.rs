//! Scheduler-level properties: page conservation under arbitrary workloads
//! (including preemption), and determinism of continuous batching — the batched
//! scheduler must emit token-identical greedy outputs to running each request
//! alone on a fresh pool, across chunked prefill, preemption/resume cycles, and
//! cross-request prefix caching (warm cache hits must be bit-identical to cold
//! runs, for any chunk size, pool pressure, and KV precision).
//!
//! Since the executor grew its sharded parallel attention phase, the same file
//! also pins the thread-count axis: for any worker count, chunk size, pool
//! pressure (preemption/resume included), and KV precision, the scheduler's
//! outputs are bit-identical to the single-threaded run.

use std::sync::Arc;

use lserve::core::{
    sequence_pages_estimate, AdmissionPolicy, EngineConfig, ModelExecutor, PreemptionPolicy,
    RequestSpec, Scheduler, SchedulerConfig, ServingEvent,
};
use lserve::kvcache::PagingConfig;
use lserve::model::{ModelConfig, ModelWeights};
use lserve::quant::KvPrecision;
use proptest::prelude::*;

fn weights(seed: u64) -> Arc<ModelWeights> {
    Arc::new(ModelWeights::random(&ModelConfig::tiny(), seed))
}

/// Small-page FP16 LServe policy: page pressure shows up at toy context lengths.
fn small_page_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

use sequence_pages_estimate as estimate;

fn run_solo(cfg: &EngineConfig, w: &Arc<ModelWeights>, chunk: usize, req: RequestSpec) -> Vec<u32> {
    // Fresh, generously sized pool; same chunk size as the batched run so the
    // tile-prefill boundary is identical.
    let pool_pages = estimate(cfg, &w.config, req.prompt.len() + req.max_new_tokens) * 2 + 16;
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = chunk;
    let mut solo = Scheduler::new(
        Arc::new(ModelExecutor::new(Arc::clone(w), cfg.clone())),
        scfg,
    );
    let id = req.id;
    solo.submit(req);
    let report = solo.run_to_completion(100_000);
    assert_eq!(solo.pool_in_use(), 0);
    let (got_id, tokens) = report.completed.into_iter().next().expect("solo completes");
    assert_eq!(got_id, id);
    tokens
}

/// Deterministic anchor for the acceptance criterion: chunk smaller than every
/// prompt, a pool that forces at least one preemption/resume cycle, and outputs
/// that still match per-request solo runs exactly.
#[test]
fn forced_preemption_and_chunked_prefill_match_solo_runs() {
    let w = weights(41);
    let cfg = small_page_cfg();
    let requests: Vec<RequestSpec> = vec![
        RequestSpec::new(1, (0..52).map(|i| (i % 90) as u32).collect()).max_new_tokens(12),
        RequestSpec::new(2, (0..44).map(|i| ((i * 3) % 90) as u32).collect()).max_new_tokens(12),
        RequestSpec::new(3, (0..36).map(|i| ((i * 7) % 90) as u32).collect()).max_new_tokens(12),
    ];
    // Pool: any single request fits with room to spare, all three together do not.
    let single_max = requests
        .iter()
        .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
        .max()
        .unwrap();
    let mut scfg = SchedulerConfig::new(single_max + single_max / 2);
    scfg.chunk_tokens = 8; // smaller than every prompt
    scfg.admission = AdmissionPolicy::FirstChunk;
    let mut sched = Scheduler::new(
        Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
        scfg,
    );
    for r in &requests {
        sched.submit(r.clone());
    }
    let report = sched.run_to_completion(200_000);
    assert!(
        report.preemptions > 0,
        "pool sized for ~1.5 sequences must force preemption"
    );
    assert_eq!(report.completed.len(), 3, "rejected: {:?}", report.rejected);
    assert_eq!(
        sched.pool_in_use(),
        0,
        "page conservation after preemptions"
    );
    for req in requests {
        let want = run_solo(&cfg, &w, 8, req.clone());
        let got = &report
            .completed
            .iter()
            .find(|(id, _)| *id == req.id)
            .unwrap()
            .1;
        assert_eq!(got, &want, "request {} diverged", req.id);
    }
    // Preempted requests must report their preemption count.
    let preempted: u32 = report.request_metrics.iter().map(|m| m.preemptions).sum();
    assert!(preempted as u64 >= report.preemptions);
}

/// Deterministic anchor for the parallel-decode acceptance criterion: a mixed
/// workload under enough pool pressure to force preemption/resume cycles must
/// produce byte-identical reports at every thread count in {1, 2, 3, 8}.
#[test]
fn parallel_decode_matches_single_thread_under_preemption() {
    let w = weights(17);
    let cfg = small_page_cfg();
    let requests: Vec<RequestSpec> = (0..3u64)
        .map(|i| {
            RequestSpec::new(
                i,
                (0..30 + 11 * i as usize)
                    .map(|t| ((t * 5 + i as usize * 3) % 90) as u32)
                    .collect(),
            )
            .max_new_tokens(10)
        })
        .collect();
    let single_max = requests
        .iter()
        .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
        .max()
        .unwrap();
    let run = |threads: usize| {
        let mut scfg = SchedulerConfig::new(single_max + single_max / 2);
        scfg.chunk_tokens = 8;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.decode_threads = threads;
        let mut sched = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
            scfg,
        );
        for r in &requests {
            sched.submit(r.clone());
        }
        let report = sched.run_to_completion(200_000);
        assert_eq!(sched.pool_in_use(), 0, "leaked pages at {threads} threads");
        report
    };
    let want = run(1);
    assert_eq!(want.completed.len(), 3);
    assert!(want.preemptions > 0, "pool must force preemption");
    for threads in [2usize, 3, 8] {
        let got = run(threads);
        assert_eq!(got.completed, want.completed, "{threads} threads diverged");
        assert_eq!(got.decode_steps, want.decode_steps);
        assert_eq!(got.preemptions, want.preemptions);
        assert_eq!(got.scheduler_steps, want.scheduler_steps);
        assert_eq!(
            got.parallel.shards, want.parallel.shards,
            "shard decomposition must not depend on thread count"
        );
        assert_eq!(got.decode_threads, threads);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Page conservation: whatever the workload, pool size, chunk size, and
    /// admission policy — including runs with preemptions and rejections — every
    /// page returns to the pool by the end of the run.
    #[test]
    fn scheduler_conserves_pages(
        wseed in 0u64..20,
        nreq in 1usize..5,
        chunk in 3usize..24,
        pool_pages in 24usize..160,
        aggressive in proptest::bool::ANY,
    ) {
        let w = weights(wseed);
        let cfg = small_page_cfg();
        let mut scfg = SchedulerConfig::new(pool_pages);
        scfg.chunk_tokens = chunk;
        scfg.admission = if aggressive {
            AdmissionPolicy::FirstChunk
        } else {
            AdmissionPolicy::FullFootprint
        };
        let mut sched = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg)),
            scfg,
        );
        for i in 0..nreq {
            sched.submit(RequestSpec::new(i as u64, (0..8 + 9 * i + wseed as usize % 7)
                    .map(|t| ((t * (i + 2)) % 90) as u32)
                    .collect()).max_new_tokens(4 + i));
        }
        let report = sched.run_to_completion(200_000);
        prop_assert_eq!(sched.pool_in_use(), 0, "leaked pages");
        prop_assert_eq!(report.completed.len() + report.rejected.len(), nreq);
    }

    /// Prefix-cache determinism (the acceptance property): with the cache
    /// enabled, every request's outputs are bit-identical to a cold solo run with
    /// the cache disabled — across chunk sizes, pool pressures (evictions and
    /// preemptions included), FP16/INT4 KV, and multi-wave traffic where later
    /// waves hit prefixes donated by earlier ones.
    #[test]
    fn prefix_cache_outputs_match_cold_solo_runs(
        wseed in 0u64..20,
        chunk in 3usize..14,
        shared_len in 8usize..40,
        slack in 0usize..60,
        quantized in proptest::bool::ANY,
    ) {
        let w = weights(wseed);
        let mut cfg = small_page_cfg();
        if quantized {
            cfg.paging = PagingConfig::new(8, 4, KvPrecision::Int4);
        }
        // A request family sharing a `shared_len`-token prefix with per-request
        // suffixes (the persona/query traffic shape).
        let requests: Vec<RequestSpec> = (0..3u64)
            .map(|i| {
                let mut prompt: Vec<u32> =
                    (0..shared_len).map(|t| ((t * 3 + 1) % 90) as u32).collect();
                prompt.extend(
                    (0..10 + 4 * i as usize).map(|t| ((t * 7 + i as usize * 11) % 90) as u32),
                );
                RequestSpec::new(i, prompt).max_new_tokens(6)
            })
            .collect();
        let single_max = requests
            .iter()
            .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
            .max()
            .unwrap();
        let mut scfg = SchedulerConfig::new(single_max + slack);
        scfg.chunk_tokens = chunk;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.prefix_cache = true;
        let mut sched = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
            scfg,
        );
        // Wave 1 populates the cache; wave 2 (same prompts re-issued under new
        // ids plus the originals' suffix family) consumes it.
        sched.submit(requests[0].clone());
        sched.run_to_completion(200_000);
        for r in &requests[1..] {
            sched.submit(r.clone());
        }
        let report = sched.run_to_completion(200_000);
        prop_assert_eq!(report.completed.len(), 3);
        for req in &requests {
            let want = run_solo(&cfg, &w, chunk, req.clone());
            let got = &report
                .completed
                .iter()
                .find(|(id, _)| *id == req.id)
                .unwrap()
                .1;
            prop_assert_eq!(got, &want, "request {} diverged under prefix caching", req.id);
        }
        // Page conservation: after the run only the cache holds pages, and
        // flushing it returns the pool to empty.
        sched.flush_prefix_cache();
        prop_assert_eq!(sched.pool_in_use(), 0, "leaked pages after flush");
        // The cache must actually have been exercised when prompts are long
        // enough to clear the tile grid.
        if shared_len >= chunk && slack >= 40 {
            prop_assert!(
                report.prefix_hit_tokens > 0,
                "no hits despite shareable prefixes (shared_len {} chunk {})",
                shared_len,
                chunk
            );
        }
    }

    /// Tiered-memory determinism (the tentpole property of the tiered KV
    /// refactor): `PreemptionPolicy::Swap` — with selection-driven demotion on
    /// or off — emits outputs bit-identical to `Replay` and to per-request
    /// solo runs, across chunk sizes, pool pressures (swap-outs and resumes
    /// included), FP16/INT4 KV, and prefix caching on/off. Migrations move
    /// pages between tiers; they must never move a single output token.
    #[test]
    fn swap_preemption_outputs_match_replay_and_solo_runs(
        wseed in 0u64..20,
        chunk in 3usize..16,
        slack in 0usize..50,
        quantized in proptest::bool::ANY,
        prefix_cache in proptest::bool::ANY,
        demote in proptest::bool::ANY,
    ) {
        let w = weights(wseed);
        let mut cfg = small_page_cfg();
        if quantized {
            cfg.paging = PagingConfig::new(8, 4, KvPrecision::Int4);
        }
        if demote {
            // Activate page selection at toy scale (in BOTH configs, so the
            // attention numerics are identical) so selection-driven demotion
            // actually fires alongside the swap traffic.
            cfg.dynamic_budget = Some(16);
        }
        let mut tiered_cfg = cfg.clone();
        if demote {
            tiered_cfg.demote_after_chunks = Some(1);
        }
        let requests: Vec<RequestSpec> = (0..3u64)
            .map(|i| {
                RequestSpec::new(
                    i,
                    (0..26 + 9 * i as usize)
                        .map(|t| ((t * 3 + i as usize * 7) % 90) as u32)
                        .collect(),
                )
                .max_new_tokens(8)
            })
            .collect();
        let single_max = requests
            .iter()
            .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
            .max()
            .unwrap();
        let run = |engine_cfg: &EngineConfig, policy: PreemptionPolicy| {
            let mut scfg = SchedulerConfig::new(single_max + slack);
            scfg.chunk_tokens = chunk;
            scfg.admission = AdmissionPolicy::FirstChunk;
            scfg.prefix_cache = prefix_cache;
            scfg.preemption = policy;
            // Pin the historical two-tier shape: this property contrasts the
            // preemption policies, and its "replay must not touch tiers"
            // invariant only holds with an unbounded host (a bounded one
            // makes prefix eviction spill — by design). The memory-hierarchy
            // knobs get their own equivalence suite in `proptest_hierarchy`.
            scfg.host_pages = 0;
            scfg.nvme = false;
            let mut sched = Scheduler::new(
                Arc::new(ModelExecutor::new(Arc::clone(&w), engine_cfg.clone())),
                scfg,
            );
            for r in &requests {
                sched.submit(r.clone());
            }
            let report = sched.run_to_completion(200_000);
            sched.flush_prefix_cache();
            assert_eq!(
                sched.pool_in_use(),
                0,
                "hot pages leaked under {policy:?} \
                 (wseed {wseed} chunk {chunk} slack {slack} quantized {quantized} \
                 prefix {prefix_cache} demote {demote}; queued {} running {} \
                 completed {})",
                sched.queued(),
                sched.running(),
                report.completed.len()
            );
            assert_eq!(
                sched.pool_cold_in_use(), 0,
                "cold pages leaked under {policy:?}"
            );
            report
        };
        let replay = run(&cfg, PreemptionPolicy::Replay);
        let swap = run(&tiered_cfg, PreemptionPolicy::Swap);
        prop_assert_eq!(replay.completed.len(), 3);
        prop_assert_eq!(
            &swap.completed, &replay.completed,
            "swap/tiered outputs diverged from replay (wseed {} chunk {} slack {} \
             quantized {} prefix {} demote {})",
            wseed, chunk, slack, quantized, prefix_cache, demote
        );
        // Every promotion consumes a page some demotion produced (a victim
        // preempted before holding any sole-owned page migrates nothing, so
        // preemptions alone need not imply traffic).
        prop_assert!(
            swap.pages_promoted <= swap.pages_demoted,
            "promoted {} pages but only {} were ever demoted",
            swap.pages_promoted,
            swap.pages_demoted
        );
        prop_assert_eq!(replay.pages_demoted, 0, "replay must not touch tiers");
        for req in &requests {
            let want = run_solo(&cfg, &w, chunk, req.clone());
            let got = &swap
                .completed
                .iter()
                .find(|(id, _)| *id == req.id)
                .unwrap()
                .1;
            prop_assert_eq!(got, &want, "request {} diverged under swap", req.id);
        }
    }

    /// Thread-count determinism (the tentpole property): for any worker count,
    /// chunk size, pool pressure (preemption/resume cycles included), and KV
    /// precision, the scheduler's outputs are bit-identical to the
    /// single-threaded run of the same workload — the sharded attention phase
    /// only redistributes work, never changes it.
    #[test]
    fn parallel_decode_outputs_match_single_thread(
        wseed in 0u64..20,
        chunk in 3usize..16,
        slack in 0usize..50,
        threads_pick in 0usize..3,
        quantized in proptest::bool::ANY,
    ) {
        let threads = [2usize, 3, 8][threads_pick];
        let w = weights(wseed);
        let mut cfg = small_page_cfg();
        if quantized {
            cfg.paging = PagingConfig::new(8, 4, KvPrecision::Int4);
        }
        let requests: Vec<RequestSpec> = (0..3u64)
            .map(|i| RequestSpec::new(i, (0..20 + 9 * i as usize)
                    .map(|t| ((t * 3 + i as usize * 7) % 90) as u32)
                    .collect()).max_new_tokens(6))
            .collect();
        let single_max = requests
            .iter()
            .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
            .max()
            .unwrap();
        let run = |threads: usize| {
            let mut scfg = SchedulerConfig::new(single_max + slack);
            scfg.chunk_tokens = chunk;
            scfg.admission = AdmissionPolicy::FirstChunk;
            scfg.decode_threads = threads;
            let mut sched = Scheduler::new(
                Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
                scfg,
            );
            for r in &requests {
                sched.submit(r.clone());
            }
            let report = sched.run_to_completion(200_000);
            assert_eq!(sched.pool_in_use(), 0, "leaked pages at {threads} threads");
            report
        };
        let want = run(1);
        let got = run(threads);
        prop_assert_eq!(&got.completed, &want.completed, "{} threads diverged", threads);
        prop_assert_eq!(got.decode_steps, want.decode_steps);
        prop_assert_eq!(got.preemptions, want.preemptions);
        prop_assert_eq!(got.parallel.shards, want.parallel.shards);
    }

    /// Determinism: the batched scheduler's greedy outputs are token-identical to
    /// running each request alone on a fresh pool, for arbitrary chunk sizes and
    /// pool pressure (preemptions included).
    #[test]
    fn batched_outputs_match_solo_runs(
        wseed in 0u64..20,
        chunk in 3usize..20,
        slack in 0usize..40,
        quantized in proptest::bool::ANY,
    ) {
        let w = weights(wseed);
        let mut cfg = small_page_cfg();
        if quantized {
            cfg.paging = PagingConfig::new(8, 4, KvPrecision::Int4);
        }
        let requests: Vec<RequestSpec> = (0..3u64)
            .map(|i| RequestSpec::new(i, (0..24 + 13 * i as usize)
                    .map(|t| ((t * 5 + i as usize) % 90) as u32)
                    .collect()).max_new_tokens(8))
            .collect();
        // Pool always fits the largest single request, plus variable slack: small
        // slack forces preemption, large slack lets everything run concurrently.
        let single_max = requests
            .iter()
            .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
            .max()
            .unwrap();
        let mut scfg = SchedulerConfig::new(single_max + slack);
        scfg.chunk_tokens = chunk;
        scfg.admission = AdmissionPolicy::FirstChunk;
        let mut sched = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
            scfg,
        );
        for r in &requests {
            sched.submit(r.clone());
        }
        let report = sched.run_to_completion(200_000);
        prop_assert_eq!(report.completed.len(), 3);
        prop_assert_eq!(sched.pool_in_use(), 0);
        for req in requests {
            let want = run_solo(&cfg, &w, chunk, req.clone());
            let got = &report
                .completed
                .iter()
                .find(|(id, _)| *id == req.id)
                .unwrap()
                .1;
            prop_assert_eq!(got, &want, "request {} diverged", req.id);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lifecycle determinism (the streaming-API acceptance property):
    /// cancelling — or stop-sequence-terminating — an arbitrary request
    /// mid-flight leaves every survivor's output bit-identical to its solo
    /// run, across FP16/INT4 KV, replay/swap preemption (swap victim choice
    /// included), and prefix cache on/off. The terminated request itself
    /// always ends on a clean prefix of its own solo run.
    #[test]
    fn cancellation_and_stops_leave_survivors_bit_identical(
        wseed in 0u64..20,
        chunk in 3usize..14,
        slack in 0usize..50,
        victim_pick in 0usize..3,
        cancel_step in 1u64..12,
        quantized in proptest::bool::ANY,
        swap in proptest::bool::ANY,
        prefix_cache in proptest::bool::ANY,
        use_stop in proptest::bool::ANY,
    ) {
        let w = weights(wseed);
        let mut cfg = small_page_cfg();
        if quantized {
            cfg.paging = PagingConfig::new(8, 4, KvPrecision::Int4);
        }
        let requests: Vec<RequestSpec> = (0..3u64)
            .map(|i| {
                RequestSpec::new(
                    i,
                    (0..24 + 9 * i as usize)
                        .map(|t| ((t * 5 + i as usize * 7) % 90) as u32)
                        .collect(),
                )
                .max_new_tokens(8)
            })
            .collect();
        let victim_id = victim_pick as u64;
        // Per-request solo references (the bit-identity baseline).
        let solo: Vec<Vec<u32>> = requests
            .iter()
            .map(|r| run_solo(&cfg, &w, chunk, r.clone()))
            .collect();
        let single_max = requests
            .iter()
            .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
            .max()
            .unwrap();
        let mut scfg = SchedulerConfig::new(single_max + slack);
        scfg.chunk_tokens = chunk;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.prefix_cache = prefix_cache;
        scfg.preemption = if swap {
            PreemptionPolicy::Swap
        } else {
            PreemptionPolicy::Replay
        };
        let mut sched = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
            scfg,
        );
        // In stop mode the victim carries a stop sequence drawn from its own
        // solo output, so it terminates mid-flight through the stop path.
        let stop_seq: Vec<u32> = solo[victim_pick][1..3].to_vec();
        let mut handles = Vec::new();
        for r in &requests {
            let mut spec = r.clone();
            if use_stop && r.id == victim_id {
                spec = spec.stop_sequence(stop_seq.clone());
            }
            handles.push(sched.submit(spec));
        }
        if !use_stop {
            for _ in 0..cancel_step {
                sched.step();
            }
            handles[victim_pick].cancel();
        }
        let report = sched.run_to_completion(200_000);
        prop_assert_eq!(
            report.completed.len() + report.cancelled.len(),
            3,
            "every request must reach a terminal state"
        );
        for req in &requests {
            let want = &solo[req.id as usize];
            if req.id == victim_id {
                // The terminated request ends on a prefix of its solo run: the
                // exact stop point for stop sequences, the cancel boundary for
                // cancellations.
                let got = report
                    .completed
                    .iter()
                    .chain(report.cancelled.iter())
                    .find(|(id, _)| *id == req.id)
                    .map(|(_, t)| t)
                    .expect("victim reached a terminal state");
                prop_assert!(
                    got.len() <= want.len() && &want[..got.len()] == got.as_slice(),
                    "victim {} diverged from its solo prefix",
                    req.id
                );
                if use_stop {
                    let expect_len = (1..=want.len())
                        .find(|&k| want[..k].ends_with(&stop_seq))
                        .expect("stop sequence drawn from the solo output");
                    prop_assert_eq!(
                        got,
                        &want[..expect_len].to_vec(),
                        "stop-terminated output must end exactly at the first match"
                    );
                }
                continue;
            }
            let got = &report
                .completed
                .iter()
                .find(|(id, _)| *id == req.id)
                .expect("survivor completed")
                .1;
            prop_assert_eq!(
                got,
                want,
                "survivor {} diverged after mid-flight termination of {}",
                req.id,
                victim_id
            );
        }
        // Page conservation across both tiers, cache included.
        sched.flush_prefix_cache();
        prop_assert_eq!(sched.pool_in_use(), 0, "leaked hot pages");
        prop_assert_eq!(sched.pool_cold_in_use(), 0, "leaked cold pages");
    }

    /// Event-stream invariants: for every request — across pool pressure,
    /// preemption policies, and cancellation — events arrive in lifecycle
    /// order (`Admitted` first, `FirstToken` exactly once before any `Token`,
    /// every `Resumed` preceded by a matching `Preempted`, no token events
    /// while preempted), exactly one terminal event arrives and it is last,
    /// and the streamed tokens reassemble the terminal event's output.
    #[test]
    fn event_streams_follow_lifecycle_order(
        wseed in 0u64..20,
        chunk in 3usize..14,
        slack in 0usize..40,
        swap in proptest::bool::ANY,
        cancel_pick in 0usize..4, // 3 = nobody cancelled
    ) {
        let w = weights(wseed);
        let cfg = small_page_cfg();
        let requests: Vec<RequestSpec> = (0..3u64)
            .map(|i| {
                RequestSpec::new(
                    i,
                    (0..20 + 9 * i as usize)
                        .map(|t| ((t * 3 + i as usize) % 90) as u32)
                        .collect(),
                )
                .max_new_tokens(6)
            })
            .collect();
        let single_max = requests
            .iter()
            .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
            .max()
            .unwrap();
        let mut scfg = SchedulerConfig::new(single_max + slack);
        scfg.chunk_tokens = chunk;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.preemption = if swap {
            PreemptionPolicy::Swap
        } else {
            PreemptionPolicy::Replay
        };
        let mut sched = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg)),
            scfg,
        );
        let handles: Vec<_> = requests.iter().map(|r| sched.submit(r.clone())).collect();
        if cancel_pick < 3 {
            sched.step();
            sched.step();
            handles[cancel_pick].cancel();
        }
        sched.run_to_completion(200_000);
        for handle in &handles {
            prop_assert!(handle.is_terminal(), "request {} never terminated", handle.id());
            let events = handle.drain_events();
            prop_assert!(!events.is_empty());
            // Exactly one terminal event, and it is last.
            let terminal_count = events.iter().filter(|e| e.is_terminal()).count();
            prop_assert_eq!(terminal_count, 1, "request {} terminal events", handle.id());
            prop_assert!(events.last().unwrap().is_terminal());
            let mut admitted = 0usize;
            let mut first_tokens = 0usize;
            let mut preempted = 0usize;
            let mut resumed = 0usize;
            let mut in_batch = false;
            let mut streamed: Vec<u32> = Vec::new();
            for event in &events {
                match event {
                    ServingEvent::Admitted => {
                        prop_assert_eq!(
                            (admitted, preempted, streamed.len()),
                            (0, 0, 0),
                            "Admitted must be the first lifecycle event"
                        );
                        admitted += 1;
                        in_batch = true;
                    }
                    ServingEvent::FirstToken { token } => {
                        prop_assert!(in_batch, "token while not running");
                        prop_assert_eq!(first_tokens, 0, "duplicate FirstToken");
                        prop_assert!(streamed.is_empty(), "FirstToken after Token");
                        first_tokens += 1;
                        streamed.push(*token);
                    }
                    ServingEvent::Token { token } => {
                        prop_assert!(in_batch, "token while not running");
                        prop_assert_eq!(first_tokens, 1, "Token before FirstToken");
                        streamed.push(*token);
                    }
                    ServingEvent::Preempted { .. } => {
                        prop_assert!(in_batch, "preempted while not running");
                        preempted += 1;
                        in_batch = false;
                    }
                    ServingEvent::Resumed => {
                        prop_assert!(!in_batch, "resumed while running");
                        prop_assert!(
                            resumed < preempted,
                            "every Resumed needs a matching earlier Preempted"
                        );
                        resumed += 1;
                        in_batch = true;
                    }
                    ServingEvent::Finished { tokens, .. } => {
                        prop_assert_eq!(tokens, &streamed, "Finished payload != streamed tokens");
                    }
                    ServingEvent::Cancelled { tokens } => {
                        prop_assert_eq!(tokens, &streamed, "Cancelled payload != streamed tokens");
                    }
                    ServingEvent::Rejected { .. } => {}
                }
            }
            prop_assert!(resumed <= preempted);
        }
    }
}
