//! Golden-output regression fixtures: seeded end-to-end token snapshots.
//!
//! Each case runs the full serving stack (chunked prefill → sharded decode →
//! greedy sampling) on seeded weights and compares the generated tokens
//! against a checked-in fixture under `tests/golden/`. Everything in the
//! pipeline is deterministic, so *any* drift — a kernel change, a selector
//! tweak, a scheduling reorder, a thread-count dependence — fails the suite
//! with a diff instead of silently shipping different tokens.
//!
//! The fixtures are also the cross-thread determinism net: CI runs this suite
//! under `LSERVE_DECODE_THREADS=1` and `=8`, and both must reproduce the same
//! bytes.
//!
//! To regenerate after an *intentional* numerics change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_outputs
//! ```
//!
//! then commit the updated files with an explanation of why the outputs moved.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use lserve::core::{
    AdmissionPolicy, EngineConfig, ModelExecutor, RequestSpec, Scheduler, SchedulerConfig,
};
use lserve::kvcache::PagingConfig;
use lserve::model::{ModelConfig, ModelWeights};
use lserve::quant::KvPrecision;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Compares `actual` against the named fixture, or rewrites the fixture when
/// `UPDATE_GOLDEN=1` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path:?} ({e}); generate it with \
             `UPDATE_GOLDEN=1 cargo test --test golden_outputs`"
        )
    });
    assert_eq!(
        actual.trim(),
        want.trim(),
        "golden output drift in `{name}`: the engine now produces different \
         tokens than the checked-in fixture. If this change is intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test --test golden_outputs` \
         and explain the numerics change in the commit."
    );
}

/// Shrinks page/tile geometry so paging, selection, and the tile grid are all
/// exercised at toy context lengths (the same trick the proptests use).
fn small_scale(mut cfg: EngineConfig, precision: KvPrecision) -> EngineConfig {
    cfg.paging = PagingConfig::new(8, 4, precision);
    cfg.prefill_tile = 8;
    if cfg.dynamic_budget.is_some() {
        // Make the selector fire well below paper-scale contexts.
        cfg.dynamic_budget = Some(24);
    }
    cfg
}

/// Deterministic request set: three prompts of different lengths, long enough
/// to cross several chunk/tile boundaries and trigger dynamic selection.
fn requests() -> Vec<RequestSpec> {
    [(1u64, 40usize), (2, 29), (3, 52)]
        .into_iter()
        .map(|(id, len)| {
            RequestSpec::new(
                id,
                (0..len)
                    .map(|t| ((t * 7 + id as usize * 13) % 90) as u32)
                    .collect(),
            )
            .max_new_tokens(12)
        })
        .collect()
}

/// Runs the serving stack on the seeded tiny model and renders one line per
/// request: `req <id> prompt_len=<n>: <generated tokens>`.
fn run_case(cfg: EngineConfig) -> String {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 71));
    let exec = Arc::new(ModelExecutor::new(weights, cfg));
    let mut scfg = SchedulerConfig::new(4096);
    scfg.chunk_tokens = 8;
    scfg.admission = AdmissionPolicy::FirstChunk;
    let mut sched = Scheduler::new(exec, scfg);
    let reqs = requests();
    for r in &reqs {
        sched.submit(r.clone());
    }
    let report = sched.run_to_completion(100_000);
    assert_eq!(report.completed.len(), reqs.len(), "all requests complete");
    let mut out = String::new();
    for (id, tokens) in &report.completed {
        let plen = reqs
            .iter()
            .find(|r| r.id == *id)
            .expect("known id")
            .prompt
            .len();
        let rendered: Vec<String> = tokens.iter().map(u32::to_string).collect();
        writeln!(out, "req {id} prompt_len={plen}: {}", rendered.join(" ")).expect("string write");
    }
    out
}

/// LServe policy, FP16 KV: mixed dense/streaming heads, hierarchical selector
/// active (budget 24), selector reuse interval 4.
#[test]
fn golden_lserve_fp16_mixed_heads() {
    let cfg = small_scale(EngineConfig::lserve_fp16(), KvPrecision::Fp16);
    check_golden("lserve_fp16_mixed_heads", &run_case(cfg));
}

/// LServe policy, INT4 KV: the quantized-page decode path (rounding included).
#[test]
fn golden_lserve_int4_mixed_heads() {
    let cfg = small_scale(EngineConfig::lserve(), KvPrecision::Int4);
    check_golden("lserve_int4_mixed_heads", &run_case(cfg));
}

/// Dense FP16 baseline: every head dense, no selection — the reference policy.
#[test]
fn golden_dense_fp16_baseline() {
    let cfg = small_scale(EngineConfig::dense(), KvPrecision::Fp16);
    check_golden("dense_fp16_baseline", &run_case(cfg));
}

/// Quest-like flat selector, FP16 flat pages: the flat scoring path.
#[test]
fn golden_quest_flat_selector_fp16() {
    let mut cfg = EngineConfig::quest_like(24);
    cfg.paging = PagingConfig::flat(8, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    check_golden("quest_flat_selector_fp16", &run_case(cfg));
}
