//! Memory-hierarchy determinism: the bounded host tier and the modeled nvme
//! tier below it must be pure accounting changes. For any workload, a
//! bounded-host run (with or without nvme) emits outputs bit-identical to the
//! historical unbounded-host run and to per-request solo runs — across
//! FP16/INT4 KV, replay/swap preemption, sync/async migration, and tight or
//! loose host capacities. Only where pages sit and what the transfers cost
//! may differ.
//!
//! The per-page mechanics behind this (multi-hop landing order, host FIFO
//! spill, demand recall pricing, in-flight cancellation on free) are pinned
//! by unit tests in `crates/kvcache/src/pool.rs`.

use std::sync::Arc;

use lserve::core::{
    sequence_pages_estimate, AdmissionPolicy, EngineConfig, MigrationMode, ModelExecutor,
    PreemptionPolicy, RequestSpec, Scheduler, SchedulerConfig,
};
use lserve::kvcache::PagingConfig;
use lserve::model::{ModelConfig, ModelWeights};
use lserve::quant::KvPrecision;
use proptest::prelude::*;

fn weights(seed: u64) -> Arc<ModelWeights> {
    Arc::new(ModelWeights::random(&ModelConfig::tiny(), seed))
}

/// Small-page FP16 LServe policy: page pressure shows up at toy context lengths.
fn small_page_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

use sequence_pages_estimate as estimate;

fn run_solo(cfg: &EngineConfig, w: &Arc<ModelWeights>, chunk: usize, req: RequestSpec) -> Vec<u32> {
    let pool_pages = estimate(cfg, &w.config, req.prompt.len() + req.max_new_tokens) * 2 + 16;
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = chunk;
    scfg.migration = MigrationMode::Sync; // the pre-hierarchy baseline
    scfg.host_pages = 0;
    scfg.nvme = false;
    let mut solo = Scheduler::new(
        Arc::new(ModelExecutor::new(Arc::clone(w), cfg.clone())),
        scfg,
    );
    let id = req.id;
    solo.submit(req);
    let report = solo.run_to_completion(100_000);
    assert_eq!(solo.pool_in_use(), 0);
    let (got_id, tokens) = report.completed.into_iter().next().expect("solo completes");
    assert_eq!(got_id, id);
    tokens
}

/// Deterministic anchor: a swap-overcommitted scene where the tight host
/// *must* spill into nvme during the swap-outs and recall on resume, while
/// outputs stay bit-identical to the unbounded baseline.
#[test]
fn tight_host_with_nvme_spills_recalls_and_matches_unbounded() {
    let w = weights(11);
    let cfg = small_page_cfg();
    let requests: Vec<RequestSpec> = (0..3u64)
        .map(|i| {
            RequestSpec::new(
                i,
                (0..40 + 9 * i as usize)
                    .map(|t| ((t * 3 + i as usize * 7) % 90) as u32)
                    .collect(),
            )
            .max_new_tokens(16)
        })
        .collect();
    let single_max = requests
        .iter()
        .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
        .max()
        .unwrap();
    let run = |host_pages: usize, nvme: bool| {
        let mut scfg = SchedulerConfig::new(single_max + single_max / 2);
        scfg.chunk_tokens = 8;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.preemption = PreemptionPolicy::Swap;
        scfg.migration = MigrationMode::Sync;
        scfg.host_pages = host_pages;
        scfg.nvme = nvme;
        let mut sched = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
            scfg,
        );
        for r in &requests {
            sched.submit(r.clone());
        }
        let report = sched.run_to_completion(200_000);
        assert_eq!(sched.pool_in_use(), 0, "hot pages leaked");
        assert_eq!(sched.pool_cold_in_use(), 0, "cold pages leaked");
        assert_eq!(sched.pool_nvme_in_use(), 0, "nvme pages leaked");
        report
    };
    let unbounded = run(0, false);
    assert_eq!(
        unbounded.completed.len(),
        3,
        "rejected: {:?}",
        unbounded.rejected
    );
    assert!(unbounded.preemptions > 0, "scene must overcommit");
    let tight = run((single_max / 4).max(1), true);
    assert_eq!(
        tight.completed, unbounded.completed,
        "tiers changed outputs"
    );
    assert!(tight.pages_spilled > 0, "tight host must spill into nvme");
    assert!(tight.pages_recalled > 0, "resume must recall from nvme");
    assert!(tight.peak_nvme_pages > 0);
    assert_eq!(unbounded.pages_spilled, 0);
    // The nvme hops are an order of magnitude pricier than host hops, so the
    // bounded run's total stall+hidden budget must strictly exceed the
    // unbounded baseline's — the tiers are modeled, not free.
    assert!(
        tight.migration_stall_tokens + tight.hidden_transfer_tokens
            > unbounded.migration_stall_tokens + unbounded.hidden_transfer_tokens,
        "nvme traffic must cost more (tight {}+{} vs unbounded {}+{})",
        tight.migration_stall_tokens,
        tight.hidden_transfer_tokens,
        unbounded.migration_stall_tokens,
        unbounded.hidden_transfer_tokens,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance property: bounded-host ≡ unbounded ≡ solo, token for
    /// token, across {FP16, INT4} × {replay, swap} × {sync, async} ×
    /// host-capacity ∈ {tight, loose}, with the nvme tier on for every
    /// bounded run, under enough pool pressure to exercise preemption,
    /// spill, and recall.
    #[test]
    fn bounded_host_outputs_match_unbounded_and_solo_runs(
        wseed in 0u64..20,
        chunk in 3usize..16,
        slack in 0usize..50,
        quantized in proptest::bool::ANY,
        swap in proptest::bool::ANY,
        asynchronous in proptest::bool::ANY,
        tight in proptest::bool::ANY,
    ) {
        let w = weights(wseed);
        let mut cfg = small_page_cfg();
        if quantized {
            cfg.paging = PagingConfig::new(8, 4, KvPrecision::Int4);
        }
        let requests: Vec<RequestSpec> = (0..3u64)
            .map(|i| {
                RequestSpec::new(
                    i,
                    (0..26 + 9 * i as usize)
                        .map(|t| ((t * 3 + i as usize * 7) % 90) as u32)
                        .collect(),
                )
                .max_new_tokens(8)
            })
            .collect();
        let single_max = requests
            .iter()
            .map(|r| estimate(&cfg, &w.config, r.prompt.len() + r.max_new_tokens))
            .max()
            .unwrap();
        // Tight: the host cannot absorb even a quarter of one victim, so
        // swap-outs chain through nvme. Loose: everything fits in the host
        // and the nvme tier stays configured but idle.
        let host_pages = if tight {
            (single_max / 4).max(1)
        } else {
            single_max * 4
        };
        let run = |host: usize, nvme: bool| {
            let mut scfg = SchedulerConfig::new(single_max + slack);
            scfg.chunk_tokens = chunk;
            scfg.admission = AdmissionPolicy::FirstChunk;
            scfg.preemption = if swap {
                PreemptionPolicy::Swap
            } else {
                PreemptionPolicy::Replay
            };
            scfg.migration = if asynchronous {
                MigrationMode::Async
            } else {
                MigrationMode::Sync
            };
            scfg.host_pages = host;
            scfg.nvme = nvme;
            let mut sched = Scheduler::new(
                Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
                scfg,
            );
            for r in &requests {
                sched.submit(r.clone());
            }
            let report = sched.run_to_completion(200_000);
            assert_eq!(
                sched.pool_in_use(),
                0,
                "hot pages leaked (wseed {wseed} chunk {chunk} slack {slack} \
                 quantized {quantized} swap {swap} async {asynchronous} \
                 host {host} nvme {nvme})"
            );
            assert_eq!(sched.pool_cold_in_use(), 0, "cold pages leaked");
            assert_eq!(sched.pool_nvme_in_use(), 0, "nvme pages leaked");
            report
        };
        let unbounded = run(0, false);
        let bounded = run(host_pages, true);
        prop_assert_eq!(
            unbounded.completed.len(),
            3,
            "rejected: {:?}",
            unbounded.rejected
        );
        prop_assert_eq!(
            &bounded.completed, &unbounded.completed,
            "bounded-host outputs diverged (wseed {} chunk {} slack {} \
             quantized {} swap {} async {} tight {})",
            wseed, chunk, slack, quantized, swap, asynchronous, tight
        );
        for req in &requests {
            let want = run_solo(&cfg, &w, chunk, req.clone());
            let got = &bounded
                .completed
                .iter()
                .find(|(id, _)| *id == req.id)
                .unwrap()
                .1;
            prop_assert_eq!(got, &want, "request {} diverged under the hierarchy", req.id);
        }
    }
}
