//! Workspace-level integration tests: the full engine against the cache-free
//! reference model, policy equivalences, and serving-loop consistency.

use std::sync::Arc;

use lserve::core::{Engine, EngineConfig, RequestSpec, SelectorKind, ServingEngine};
use lserve::kvcache::PagingConfig;
use lserve::model::{greedy_next_token, reference_forward_full, ModelConfig, ModelWeights};
use lserve::quant::KvPrecision;

fn weights(seed: u64) -> Arc<ModelWeights> {
    Arc::new(ModelWeights::random(&ModelConfig::tiny(), seed))
}

fn generate(cfg: EngineConfig, w: &Arc<ModelWeights>, prompt: &[u32], n: usize) -> Vec<u32> {
    let mut pool = cfg.make_pool_for(&w.config, prompt.len() + n + 8);
    let mut e = Engine::new(Arc::clone(w), cfg);
    e.generate(&mut pool, prompt, n).expect("pool sized")
}

#[test]
fn dense_engine_tracks_reference_model_over_long_decode() {
    let w = weights(1);
    let cfg = EngineConfig::dense();
    let mut pool = cfg.make_pool_for(&w.config, 128);
    let mut e = Engine::new(Arc::clone(&w), cfg);
    let prompt = [2u32, 4, 8, 16];
    let mut seq = prompt.to_vec();
    let mut logits = e.prefill(&mut pool, &prompt).unwrap().logits;
    for _ in 0..40 {
        let next = greedy_next_token(&logits);
        seq.push(next);
        logits = e.decode_step(&mut pool, next).unwrap().logits;
        let want = reference_forward_full(&w, &seq);
        let row = want.row(seq.len() - 1);
        let max_diff = logits
            .iter()
            .zip(row)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 5e-3,
            "divergence {max_diff} at len {}",
            seq.len()
        );
    }
}

#[test]
fn every_policy_generates_the_requested_tokens() {
    let w = weights(2);
    let prompt: Vec<u32> = (0..24).map(|i| (i % 90) as u32).collect();
    for cfg in [
        EngineConfig::dense(),
        EngineConfig::lserve(),
        EngineConfig::lserve_fp16(),
        EngineConfig::duo_like(),
        EngineConfig::qserve_like(),
        EngineConfig::quest_like(4096),
    ] {
        let out = generate(cfg.clone(), &w, &prompt, 12);
        assert_eq!(out.len(), 12, "config {cfg:?}");
        assert!(out.iter().all(|&t| (t as usize) < w.config.vocab));
    }
}

#[test]
fn dynamic_sparsity_with_infinite_budget_is_exact() {
    // Flat and hierarchical selectors with budget >= context must be bit-identical
    // to dense attention (FP16 paging isolates the selector).
    let w = weights(3);
    let prompt: Vec<u32> = (0..40).map(|i| (i % 90) as u32).collect();
    let dense = generate(EngineConfig::dense(), &w, &prompt, 16);
    for selector in [SelectorKind::Flat, SelectorKind::Hierarchical] {
        let mut cfg = EngineConfig::lserve_fp16();
        cfg.streaming_sparsity = 0.0;
        cfg.selector = selector;
        cfg.dynamic_budget = Some(1 << 20);
        let sparse = generate(cfg, &w, &prompt, 16);
        assert_eq!(sparse, dense, "{selector:?}");
    }
}

#[test]
fn reuse_interval_one_equals_reuse_interval_any_with_full_budget() {
    let w = weights(4);
    let prompt: Vec<u32> = (0..32).map(|i| (i % 90) as u32).collect();
    let mut base = EngineConfig::lserve_fp16();
    base.streaming_sparsity = 0.0;
    base.dynamic_budget = Some(1 << 20);
    let mut c1 = base.clone();
    c1.reuse_interval = 1;
    let mut c8 = base;
    c8.reuse_interval = 8;
    assert_eq!(generate(c1, &w, &prompt, 12), generate(c8, &w, &prompt, 12));
}

#[test]
fn quantized_kv_bounded_logit_drift() {
    let w = weights(5);
    let prompt: Vec<u32> = (0..16).map(|i| (i % 90) as u32).collect();
    let dense_cfg = EngineConfig::dense();
    let mut dense_pool = dense_cfg.make_pool_for(&w.config, 64);
    let mut dense = Engine::new(Arc::clone(&w), dense_cfg);
    let d = dense.prefill(&mut dense_pool, &prompt).unwrap();

    let mut q_cfg = EngineConfig::qserve_like();
    q_cfg.paging = PagingConfig::flat(64, KvPrecision::Int8);
    let mut q_pool = q_cfg.make_pool_for(&w.config, 64);
    let mut q = Engine::new(Arc::clone(&w), q_cfg);
    let o = q.prefill(&mut q_pool, &prompt).unwrap();

    // Prefill attention runs on in-flight activations, so prefill logits are equal;
    // the quantized cache only affects decode.
    let prefill_diff = d
        .logits
        .iter()
        .zip(&o.logits)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        prefill_diff < 1e-4,
        "prefill should be exact: {prefill_diff}"
    );

    let dd = dense.decode_step(&mut dense_pool, 7).unwrap();
    let qq = q.decode_step(&mut q_pool, 7).unwrap();
    let decode_diff = dd
        .logits
        .iter()
        .zip(&qq.logits)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(decode_diff > 0.0, "int8 cache must differ somewhere");
    assert!(decode_diff < 0.5, "int8 drift too large: {decode_diff}");
}

#[test]
fn serving_matches_single_engine_for_every_policy() {
    for cfg in [EngineConfig::dense(), EngineConfig::lserve_fp16()] {
        let w = weights(6);
        let prompt: Vec<u32> = (0..20).map(|i| (i % 90) as u32).collect();
        let standalone = generate(cfg.clone(), &w, &prompt, 10);
        let mut srv = ServingEngine::new(Arc::clone(&w), cfg, 4096);
        srv.submit(RequestSpec::new(9, prompt.clone()).max_new_tokens(10));
        let report = srv.run_to_completion(10_000);
        assert_eq!(report.completed[0].1, standalone);
    }
}

#[test]
fn serving_under_pressure_completes_everything() {
    let w = weights(7);
    let mut srv = ServingEngine::new(Arc::clone(&w), EngineConfig::lserve_fp16(), 200);
    for id in 0..10 {
        srv.submit(
            RequestSpec::new(id, (0..16 + id as usize).map(|i| (i % 90) as u32).collect())
                .max_new_tokens(8),
        );
    }
    let report = srv.run_to_completion(100_000);
    assert_eq!(report.completed.len(), 10);
    assert!(report.rejected.is_empty());
    assert_eq!(srv.pool_in_use(), 0);
}

#[test]
fn streaming_masks_are_deterministic_per_seed() {
    let w = weights(8);
    let a = Engine::new(Arc::clone(&w), EngineConfig::lserve_fp16());
    let b = Engine::new(Arc::clone(&w), EngineConfig::lserve_fp16());
    assert_eq!(a.head_kinds(), b.head_kinds());
    let mut other = EngineConfig::lserve_fp16();
    other.gate_seed = 999;
    let c = Engine::new(w, other);
    assert_ne!(a.head_kinds(), c.head_kinds());
}
