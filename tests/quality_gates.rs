//! Tier-1 retrieval-quality gates: the NIAH/RULER workload generators promoted
//! from figure-harness material into regression tests that run on every
//! `cargo test`.
//!
//! Each gate runs the real engine machinery — seeded haystacks loaded through
//! the paged KV cache, page selection through the production selectors, and
//! (for the attention gate) the actual paged decode kernel — on instances
//! small enough for debug builds, and asserts accuracy against **fixed
//! thresholds**. A selector or cache regression that silently degrades
//! retrieval now fails CI instead of only bending a benchmark curve.

use lserve::attention::decode_dense_head;
use lserve::kvcache::PagingConfig;
use lserve::quant::KvPrecision;
use lserve::selector::{FlatSelector, HierarchicalSelector, PageSelector, ReusableSelector};
use lserve::workloads::{DriftingQueries, MultiNeedleCase, NiahCase, NiahConfig};

const SEQ: usize = 16_384;
const BUDGET: usize = 4096;
const SEEDS: u64 = 5;

fn mean_recall<F: FnMut(u64) -> f64>(mut run: F) -> (f64, f64) {
    let mut total = 0.0;
    let mut min: f64 = 1.0;
    for seed in 0..SEEDS {
        let r = run(seed);
        total += r;
        min = min.min(r);
    }
    (total / SEEDS as f64, min)
}

/// Figure 6/9 regime: flat Quest-style statistics over fine (16-token) pages
/// must retrieve the needle essentially always.
#[test]
fn niah_flat_fine_pages_recall_gate() {
    let cfg = NiahConfig::standard(SEQ);
    let (mean, _) = mean_recall(|seed| {
        let case = NiahCase::generate(cfg, 0.6, 100 + seed);
        let (pool, cache) = case.build_cache(PagingConfig::flat(16, KvPrecision::Fp16));
        let mut sel = FlatSelector::new(true);
        let s = sel.select(&pool, &cache, &[case.query()], BUDGET, 0);
        case.recall(&s.pages, 16)
    });
    assert!(
        mean >= 0.9,
        "flat@16 mean recall {mean:.3} below the 0.9 gate"
    );
}

/// Figure 13 regime: hierarchical paging must keep recall high on coarse
/// (64-token) physical pages with 16-token logical statistics — the
/// page-size-dilemma fix this repo reproduces.
#[test]
fn niah_hierarchical_coarse_pages_recall_gate() {
    let cfg = NiahConfig::standard(SEQ);
    let (mean, _) = mean_recall(|seed| {
        let case = NiahCase::generate(cfg, 0.4, 200 + seed);
        let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Fp16));
        let mut sel = HierarchicalSelector::new(true);
        let s = sel.select(&pool, &cache, &[case.query()], BUDGET, 0);
        case.recall(&s.pages, 64)
    });
    assert!(
        mean >= 0.9,
        "hierarchical@64/16 mean recall {mean:.3} below the 0.9 gate"
    );
}

/// The selection must also survive quantization: INT4 pages store the key
/// statistics the selector reads, so rounding error must not lose the needle.
#[test]
fn niah_hierarchical_int4_recall_gate() {
    let cfg = NiahConfig::standard(SEQ);
    let (mean, _) = mean_recall(|seed| {
        let case = NiahCase::generate(cfg, 0.5, 300 + seed);
        let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Int4));
        let mut sel = HierarchicalSelector::new(true);
        let s = sel.select(&pool, &cache, &[case.query()], BUDGET, 0);
        case.recall(&s.pages, 64)
    });
    assert!(
        mean >= 0.9,
        "hierarchical@64/16 INT4 mean recall {mean:.3} below the 0.9 gate"
    );
}

/// End-to-end through the paged decode kernel: when the query locks onto the
/// needle hard enough that the softmax mass concentrates there (the sharpened
/// probe below), attention restricted to the *selected* pages must reproduce
/// full attention closely — i.e. the pages the selector dropped carried
/// negligible mass for this query.
#[test]
fn niah_selected_attention_matches_full_gate() {
    let cfg = NiahConfig::standard(8192);
    for seed in 0..3u64 {
        let case = NiahCase::generate(cfg, 0.5, 400 + seed);
        let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Fp16));
        let mut sel = HierarchicalSelector::new(true);
        let s = sel.select(&pool, &cache, &[case.query()], BUDGET, 0);
        assert!(
            case.recall(&s.pages, 64) >= 1.0,
            "seed {seed} lost the needle"
        );
        // Sharpen the probe: a 4x query concentrates the softmax on the
        // needle tokens, the regime where page selection must be lossless.
        let probe: Vec<f32> = case.query().iter().map(|x| 4.0 * x).collect();
        let scale = 1.0 / (cfg.head_dim as f32).sqrt();
        let (full, _) = decode_dense_head(&pool, &cache, &probe, scale, None);
        let (selected, _) = decode_dense_head(&pool, &cache, &probe, scale, Some(&s.pages));
        let err: f32 = full
            .iter()
            .zip(&selected)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let norm: f32 = full.iter().map(|a| a * a).sum::<f32>().sqrt();
        assert!(
            err <= 0.1 * norm,
            "seed {seed}: selected attention drifted {err:.4} vs norm {norm:.4}"
        );
    }
}

/// RULER-style multi-needle aggregation: the hierarchical selector must keep
/// at least 3 of 4 needles under the same token budget (partial credit, like
/// RULER's multi-needle subtasks).
#[test]
fn ruler_multi_needle_accuracy_gate() {
    let cfg = NiahConfig {
        spike: 3.2,
        ..NiahConfig::standard(8192)
    };
    let mut total = 0.0;
    for seed in 0..3u64 {
        let case = MultiNeedleCase::generate(cfg, 4, 500 + seed);
        let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Fp16));
        let mut sel = HierarchicalSelector::new(true);
        let s = sel.select(&pool, &cache, &[case.query()], BUDGET, 0);
        let acc = case.accuracy(&s.pages, 64);
        assert!(
            acc >= 0.5,
            "seed {seed} accuracy {acc:.3} below the 0.5 floor"
        );
        total += acc;
    }
    let mean = total / 3.0;
    assert!(
        mean >= 0.75,
        "multi-needle mean accuracy {mean:.3} below 0.75"
    );
}

/// Table 6 regime at test scale: drifting decode queries under the paper's
/// default reuse interval (C=4) must stay close to select-every-step quality,
/// and far above the floor.
#[test]
fn ruler_drifting_reuse_interval_gate() {
    let cfg = NiahConfig {
        spike: 3.2,
        ..NiahConfig::standard(8192)
    };
    let steps = 48;
    let run = |interval: usize| -> f64 {
        let mut total = 0.0;
        for seed in 0..2u64 {
            let case = MultiNeedleCase::generate(cfg, 3, 600 + seed);
            let trace = DriftingQueries::generate(&case, steps, 12, 1.2, 0.2, 700 + seed);
            let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Fp16));
            let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), interval);
            for t in 0..steps {
                let s = sel.select(&pool, &cache, &[trace.query(t)], BUDGET, t);
                total += trace.weighted_recall(&case, t, &s.pages, 64);
            }
        }
        total / (2 * steps) as f64
    };
    let every_step = run(1);
    let reused = run(4);
    assert!(
        every_step >= 0.85,
        "C=1 weighted recall {every_step:.3} below the 0.85 gate"
    );
    assert!(
        reused >= 0.8,
        "C=4 weighted recall {reused:.3} below the 0.8 gate"
    );
    assert!(
        reused >= every_step - 0.1,
        "reuse interval 4 lost more than 0.1 recall ({reused:.3} vs {every_step:.3})"
    );
}
