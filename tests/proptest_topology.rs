//! Device-matrix determinism: multi-device head placement is a pure
//! accounting change. For any workload, running the scheduler against 1, 2 or
//! 4 simulated devices emits bit-identical outputs — across FP16/INT4 KV,
//! replay/swap preemption, sync/async migration, and prefix caching on/off.
//! Placement, cross-device gathers and the rebalancer only move *modeled*
//! cost between simulated devices; the arithmetic never changes.
//!
//! The same file anchors the cluster front door: the prefix-affinity router
//! must actually produce affinity hits on a shared-prefix workload, and the
//! per-replica reports must sum exactly to the rolled-up cluster snapshot.

use std::sync::Arc;

use lserve::core::{
    sequence_pages_estimate, AdmissionPolicy, Cluster, ClusterConfig, EngineConfig, MigrationMode,
    ModelExecutor, PreemptionPolicy, RequestSpec, Scheduler, SchedulerConfig, ServingReport,
};
use lserve::kvcache::PagingConfig;
use lserve::model::{ModelConfig, ModelWeights};
use lserve::quant::KvPrecision;
use proptest::prelude::*;

fn weights(seed: u64) -> Arc<ModelWeights> {
    Arc::new(ModelWeights::random(&ModelConfig::tiny(), seed))
}

/// Small-page FP16 LServe policy: page pressure shows up at toy context lengths.
fn small_page_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

fn requests() -> Vec<RequestSpec> {
    (0..3u64)
        .map(|i| {
            RequestSpec::new(
                i,
                (0..30 + 9 * i as usize)
                    .map(|t| ((t * 3 + i as usize * 7) % 90) as u32)
                    .collect(),
            )
            .max_new_tokens(8)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_devices(
    w: &Arc<ModelWeights>,
    cfg: &EngineConfig,
    devices: usize,
    chunk: usize,
    slack: usize,
    swap: bool,
    prefix_cache: bool,
    migration: MigrationMode,
) -> ServingReport {
    let reqs = requests();
    let single_max = reqs
        .iter()
        .map(|r| sequence_pages_estimate(cfg, &w.config, r.prompt.len() + r.max_new_tokens))
        .max()
        .unwrap();
    let mut scfg = SchedulerConfig::new(single_max + single_max / 2 + slack);
    scfg.chunk_tokens = chunk;
    scfg.admission = AdmissionPolicy::FirstChunk;
    scfg.prefix_cache = prefix_cache;
    scfg.preemption = if swap {
        PreemptionPolicy::Swap
    } else {
        PreemptionPolicy::Replay
    };
    scfg.migration = migration;
    scfg.devices = devices;
    let mut sched = Scheduler::new(
        Arc::new(ModelExecutor::new(Arc::clone(w), cfg.clone())),
        scfg,
    );
    for r in &reqs {
        sched.submit(r.clone());
    }
    let report = sched.run_to_completion(200_000);
    sched.flush_prefix_cache();
    assert_eq!(
        sched.pool_in_use(),
        0,
        "hot pages leaked at {devices} devices"
    );
    report
}

/// Deterministic anchor: a demanding scene (swap preemption, async migration,
/// selection-driven demotion) where the 2- and 4-device runs must keep every
/// output token identical to the single-device run while charging modeled
/// interconnect tokens for cross-device gathers.
#[test]
fn device_matrix_preserves_outputs_and_charges_interconnect() {
    let w = weights(23);
    let mut cfg = small_page_cfg();
    cfg.dynamic_budget = Some(24);
    cfg.demote_after_chunks = Some(1);
    cfg.reuse_interval = 2;
    let base = run_devices(&w, &cfg, 1, 8, 0, true, false, MigrationMode::Async);
    assert_eq!(base.completed.len(), 3, "rejected: {:?}", base.rejected);
    assert_eq!(base.devices, 1);
    assert_eq!(base.parallel.interconnect_tokens, 0);
    for devices in [2usize, 4] {
        let multi = run_devices(&w, &cfg, devices, 8, 0, true, false, MigrationMode::Async);
        assert_eq!(
            multi.completed, base.completed,
            "{devices}-device outputs diverged"
        );
        assert_eq!(multi.devices, devices);
        assert!(
            multi.parallel.interconnect_tokens > 0,
            "multi-device batches must charge cross-device gathers"
        );
        assert!(multi.parallel.device_cost_capacity >= multi.parallel.device_cost_total);
        assert!(multi.parallel.device_imbalance() >= 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance property: for any chunk size, pool slack, KV precision,
    /// preemption policy, migration mode and prefix caching, the scheduler's
    /// outputs are bit-identical across {1, 2, 4} simulated devices.
    #[test]
    fn outputs_identical_across_device_counts(
        wseed in 0u64..20,
        chunk in 3usize..16,
        slack in 0usize..50,
        quantized in proptest::bool::ANY,
        swap in proptest::bool::ANY,
        prefix_cache in proptest::bool::ANY,
        async_migration in proptest::bool::ANY,
        demote in proptest::bool::ANY,
    ) {
        let w = weights(wseed);
        let mut cfg = small_page_cfg();
        if quantized {
            cfg.paging = PagingConfig::new(8, 4, KvPrecision::Int4);
        }
        if demote {
            cfg.dynamic_budget = Some(16);
            cfg.demote_after_chunks = Some(1);
        }
        let migration = if async_migration {
            MigrationMode::Async
        } else {
            MigrationMode::Sync
        };
        let base = run_devices(&w, &cfg, 1, chunk, slack, swap, prefix_cache, migration);
        prop_assert_eq!(base.completed.len(), 3, "rejected: {:?}", base.rejected);
        for devices in [2usize, 4] {
            let multi = run_devices(&w, &cfg, devices, chunk, slack, swap, prefix_cache, migration);
            prop_assert_eq!(
                &multi.completed, &base.completed,
                "outputs diverged at {} devices (wseed {} chunk {} slack {} \
                 quantized {} swap {} prefix {} async {} demote {})",
                devices, wseed, chunk, slack, quantized, swap, prefix_cache,
                async_migration, demote
            );
        }
    }
}

/// Router anchor: on a two-family shared-prefix workload, affinity routing
/// produces hits, keeps each family on one replica (so the prefix cache
/// hits), and the rolled-up snapshot's cluster totals are exact sums of the
/// per-replica reports.
#[test]
fn router_affinity_hits_and_rollup_sums_replicas() {
    let weights = weights(7);
    let exec = Arc::new(ModelExecutor::new(weights, EngineConfig::lserve_fp16()));
    let mut scfg = SchedulerConfig::new(2048);
    scfg.prefix_cache = true;
    scfg.chunk_tokens = 8;
    let mut cluster = Cluster::new(
        exec,
        scfg,
        ClusterConfig {
            replicas: 2,
            affinity_tokens: 16,
        },
    );
    let family = |seed: u32, q: u32| -> Vec<u32> {
        let mut p: Vec<u32> = (0..24u32).map(|t| (seed + t) % 40).collect();
        p.push(40 + q);
        p
    };
    // Wave 1 seeds each family's replica; wave 2 follows the recorded prefix.
    let mut id = 0u64;
    for seed in [0u32, 7] {
        cluster.submit(RequestSpec::new(id, family(seed, 0)).max_new_tokens(4));
        id += 1;
    }
    cluster.run_to_completion(10_000);
    for seed in [0u32, 7] {
        for q in 1..4u32 {
            cluster.submit(RequestSpec::new(id, family(seed, q)).max_new_tokens(4));
            id += 1;
        }
    }
    let report = cluster.run_to_completion(10_000);
    let stats = cluster.router_stats();
    assert_eq!(stats.routed, 8);
    assert!(stats.affinity_hits > 0, "affinity must route follow-ups");
    assert_eq!(stats.affinity_hits + stats.least_loaded, stats.routed);
    assert_eq!(report.completed(), 8);
    assert!(
        report.prefix_hit_tokens() > 0,
        "affinity must enable cache hits"
    );

    // Exact-sum anchor: the cluster section of the rollup equals manual sums
    // over the per-replica reports.
    assert_eq!(
        report.completed(),
        report
            .replicas
            .iter()
            .map(|r| r.completed.len())
            .sum::<usize>()
    );
    assert_eq!(
        report.decode_steps(),
        report.replicas.iter().map(|r| r.decode_steps).sum::<u64>()
    );
    assert_eq!(
        report.prefix_hit_tokens(),
        report
            .replicas
            .iter()
            .map(|r| r.prefix_hit_tokens)
            .sum::<u64>()
    );
    let rendered = report.rollup().render();
    lserve::trace::validate_json(&rendered).unwrap();
    assert!(rendered.contains(&format!("\"completed\":{}", report.completed())));
    assert!(rendered.contains("\"replica0\""));
    assert!(rendered.contains("\"replica1\""));
}
