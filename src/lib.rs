//! # LServe: Efficient Long-sequence LLM Serving with Unified Sparse Attention
//!
//! A CPU reproduction of the MLSys 2025 paper (Yang, Guo, Tang et al.), built as a
//! Rust workspace. This facade crate re-exports every subsystem; see `DESIGN.md` for
//! the system inventory, the executor/state split, and the scheduler architecture.
//!
//! The paper's idea in one paragraph: attention over long contexts is computed
//! block-by-block along the KV dimension, and a block is either fully computed or
//! fully skipped — so *which blocks you visit* is the whole performance story.
//! LServe unifies three ways of visiting fewer blocks: **static sparsity** (half the
//! heads become Λ-masked streaming heads, fixed offline), **dynamic sparsity**
//! (dense heads attend only the top-scoring KV pages under a constant token budget,
//! chosen per-query by hierarchical min/max page statistics), and **KV quantization**
//! (each visited block is cheaper). The three compose multiplicatively.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`tensor`](lserve_tensor) | f32 kernels: matmul, online softmax, RMSNorm, RoPE |
//! | [`quant`](lserve_quant) | INT8/INT4 group quantization (QServe-style KV layout) |
//! | [`kvcache`](lserve_kvcache) | paged pool (refcounts + copy-on-write forks), two-way dense/streaming caches, `K_stats` |
//! | [`prefixcache`](lserve_prefixcache) | cross-request KV prefix cache: radix tree, LRU, refcounted page sharing |
//! | [`attention`](lserve_attention) | block patterns (§3.4 iterators), prefill/decode/fused kernels |
//! | [`selector`](lserve_selector) | flat (Quest), hierarchical (§3.5.2), reusable (§3.5.3) |
//! | [`model`](lserve_model) | Llama-3/Llama-2/Minitron shapes, seeded weights, forward blocks |
//! | [`costmodel`](lserve_costmodel) | A100/L40S analytical model calibrated to the paper |
//! | [`workloads`](lserve_workloads) | NIAH, RULER/LongBench proxies, DuoAttention gates |
//! | [`core`](lserve_core) | the engine: classification, pipelines, serving loop |
//! | [`trace`](lserve_trace) | work-token-clocked tracing, Chrome/Perfetto export, JSON metrics |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use lserve::core::{Engine, EngineConfig};
//! use lserve::model::{ModelConfig, ModelWeights};
//!
//! let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 42));
//! let cfg = EngineConfig::lserve_fp16();
//! let mut pool = cfg.make_pool_for(&weights.config, 256);
//! let mut engine = Engine::new(weights, cfg);
//! let tokens = engine.generate(&mut pool, &[1, 2, 3, 4], 8)?;
//! assert_eq!(tokens.len(), 8);
//! # Ok::<(), lserve::core::engine::OutOfPagesError>(())
//! ```

pub use lserve_attention as attention;
pub use lserve_core as core;
pub use lserve_costmodel as costmodel;
pub use lserve_kvcache as kvcache;
pub use lserve_model as model;
pub use lserve_prefixcache as prefixcache;
pub use lserve_quant as quant;
pub use lserve_selector as selector;
pub use lserve_tensor as tensor;
pub use lserve_trace as trace;
pub use lserve_workloads as workloads;
